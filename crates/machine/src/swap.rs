//! Demand paging with UFO-bit save/restore (paper Appendix A).
//!
//! The paper modifies the Linux kernel to save a page's UFO bits when it is
//! swapped out and restore them when it is swapped back in, with a fast path
//! for pages whose bits are all clear. This module models exactly that
//! responsibility: residency, an LRU victim policy, the per-page bit store,
//! and the all-clear optimization. Data itself always stays in the memory
//! image (a timing-neutral simplification — what must survive swap is the
//! *protection*, which is what we model and test).
//!
//! Paging is off by default; enable it with [`Machine::enable_swap`].

use std::collections::BTreeMap;

use crate::addr::{Addr, PageAddr, PAGE_LINES};
use crate::btm::{AbortInfo, AbortReason};
use crate::machine::{AccessError, AccessResult, CpuId, Machine};
use crate::ufo::UfoBits;

/// Configuration for the paging model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwapConfig {
    /// Maximum number of simultaneously resident pages.
    pub max_resident_pages: usize,
}

/// Counters for the paging model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Pages faulted in.
    pub page_ins: u64,
    /// Pages evicted.
    pub page_outs: u64,
    /// Evictions that had to save UFO bits.
    pub ufo_pages_saved: u64,
    /// Evictions that took the all-clear fast path (no bits to save).
    pub all_clear_fast_path: u64,
    /// Page-ins that restored saved UFO bits.
    pub ufo_pages_restored: u64,
    /// Saved UFO line bits that could not be restored on page-in because the
    /// line fell outside configured memory. Losing protection silently would
    /// break strong atomicity, so any occurrence is a bug: debug builds
    /// assert, release builds count it here so the run report surfaces it.
    pub ufo_bits_dropped: u64,
}

impl SwapStats {
    /// Adds another machine's paging counters into this one.
    ///
    /// Destructures exhaustively so a newly added counter is a compile
    /// error until it is merged.
    pub fn merge(&mut self, other: &SwapStats) {
        let SwapStats {
            page_ins,
            page_outs,
            ufo_pages_saved,
            all_clear_fast_path,
            ufo_pages_restored,
            ufo_bits_dropped,
        } = other;
        self.page_ins += page_ins;
        self.page_outs += page_outs;
        self.ufo_pages_saved += ufo_pages_saved;
        self.all_clear_fast_path += all_clear_fast_path;
        self.ufo_pages_restored += ufo_pages_restored;
        self.ufo_bits_dropped += ufo_bits_dropped;
    }
}

#[derive(Debug)]
pub(crate) struct SwapState {
    cfg: SwapConfig,
    /// Resident pages with an LRU timestamp. A `BTreeMap`, not a
    /// `HashMap`: the eviction loop and the LRU scan iterate this map, and
    /// replay determinism requires those sweeps to visit pages in an order
    /// independent of hasher seeding (the PR-3 nondet-iteration class).
    resident: BTreeMap<PageAddr, u64>,
    tick: u64,
    /// Saved UFO bits for swapped-out pages (one entry per line of the
    /// page). Ordered for the same reason as `resident`.
    saved_bits: BTreeMap<PageAddr, Vec<UfoBits>>,
    stats: SwapStats,
}

impl SwapState {
    fn new(cfg: SwapConfig) -> Self {
        assert!(
            cfg.max_resident_pages >= 1,
            "need at least one resident page"
        );
        SwapState {
            cfg,
            resident: BTreeMap::new(),
            tick: 0,
            saved_bits: BTreeMap::new(),
            stats: SwapStats::default(),
        }
    }

    /// Touches `page` if resident, returning whether it was.
    fn touch_resident(&mut self, page: PageAddr) -> bool {
        self.tick += 1;
        let t = self.tick;
        if let Some(lru) = self.resident.get_mut(&page) {
            *lru = t;
            true
        } else {
            false
        }
    }

    fn lru_victim(&self) -> Option<PageAddr> {
        self.resident
            .iter()
            .min_by_key(|&(p, &t)| (t, p.0))
            .map(|(&p, _)| p)
    }

    pub(crate) fn reset_stats(&mut self) {
        self.stats = SwapStats::default();
    }
}

impl Machine {
    /// Turns on demand paging. All pages start non-resident; the first
    /// access to each page takes a (transparent, for plain code) page fault.
    /// BTM transactions touching a non-resident page abort with
    /// [`AbortReason::PageFault`] and the faulting address, which the
    /// hybrid's abort handler resolves by touching the page
    /// non-transactionally.
    pub fn enable_swap(&mut self, cfg: SwapConfig) {
        self.swap = Some(SwapState::new(cfg));
    }

    /// Paging counters (zeroed if paging is disabled).
    #[must_use]
    pub fn swap_stats(&self) -> SwapStats {
        self.swap.as_ref().map(|s| s.stats).unwrap_or_default()
    }

    /// Whether `page` is currently resident (always `true` with paging off).
    #[must_use]
    pub fn page_resident(&self, page: PageAddr) -> bool {
        self.swap
            .as_ref()
            .is_none_or(|s| s.resident.contains_key(&page))
    }

    /// Ensures the page containing `addr` is resident, evicting an LRU
    /// victim (saving its UFO bits) if necessary.
    pub(crate) fn page_in_if_needed(&mut self, cpu: CpuId, addr: Addr) -> AccessResult<()> {
        let Some(swap) = &mut self.swap else {
            return Ok(());
        };
        let page = addr.page();
        if swap.touch_resident(page) {
            // Chaos: swap thrash — the OS reclaims the page out from under
            // the access, which then re-faults exactly like a cold miss
            // (aborting an enclosing BTM transaction with a page fault).
            if !self.chaos_roll(crate::ChaosFaultKind::SwapThrash) {
                return Ok(());
            }
            self.chaos_record(cpu, crate::ChaosFaultKind::SwapThrash);
            let mut s = self.swap.take().expect("swap present");
            self.page_out(&mut s, cpu, page);
            self.swap = Some(s);
        }
        if self.btm[cpu].active {
            let info = AbortInfo::at(AbortReason::PageFault, addr);
            self.finalize_abort(cpu, info);
            return Err(AccessError::TxnAbort(info));
        }
        let mut swap = self.swap.take().expect("swap present");
        while swap.resident.len() >= swap.cfg.max_resident_pages {
            let victim = swap.lru_victim().expect("resident set nonempty");
            self.page_out(&mut swap, cpu, victim);
        }
        // Fault the page in, restoring any saved UFO bits.
        self.charge(cpu, self.cfg.costs.page_in);
        swap.stats.page_ins += 1;
        swap.tick += 1;
        let t = swap.tick;
        swap.resident.insert(page, t);
        if let Some(bits) = swap.saved_bits.remove(&page) {
            swap.stats.ufo_pages_restored += 1;
            let first = page.first_line();
            for (i, b) in bits.into_iter().enumerate() {
                let line = crate::addr::LineAddr(first.0 + i as u64);
                if line.index() < self.cfg.memory_lines() {
                    self.dir.set_ufo(line, b);
                } else {
                    // page_out truncates the save at memory_lines(), so a
                    // saved bit for an out-of-range line means the save and
                    // restore disagree about the memory size — protection
                    // would be silently lost.
                    debug_assert!(
                        false,
                        "saved UFO bits for out-of-range {line:?} (memory has {} lines)",
                        self.cfg.memory_lines()
                    );
                    swap.stats.ufo_bits_dropped += 1;
                }
            }
        }
        self.swap = Some(swap);
        Ok(())
    }

    fn page_out(&mut self, swap: &mut SwapState, cpu: CpuId, victim: PageAddr) {
        self.charge(cpu, self.cfg.costs.page_out);
        swap.stats.page_outs += 1;
        swap.resident.remove(&victim);
        let first = victim.first_line();
        let mut bits = Vec::with_capacity(PAGE_LINES as usize);
        let mut any = false;
        for i in 0..PAGE_LINES {
            let line = crate::addr::LineAddr(first.0 + i);
            if line.index() >= self.cfg.memory_lines() {
                break;
            }
            // Evict cached copies; speculative holders lose their lines.
            for o in 0..self.cfg.cpus {
                if self.btm[o].holds_spec(line) {
                    self.doom(
                        o,
                        AbortInfo::at(AbortReason::NonTConflict, line.base_addr()),
                    );
                }
                if self.dir.is_sharer(line, o) {
                    self.l1[o].invalidate(line);
                    self.dir.remove_sharer(line, o);
                }
            }
            let b = self.dir.ufo(line);
            any |= !b.is_none();
            bits.push(b);
            self.dir.set_ufo(line, UfoBits::NONE);
        }
        if any {
            swap.stats.ufo_pages_saved += 1;
            swap.saved_bits.insert(victim, bits);
        } else {
            // Appendix A's optimization: an all-clear page needs no save.
            swap.stats.all_clear_fast_path += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, PAGE_BYTES};

    fn page_addr(p: u64) -> Addr {
        Addr(p * PAGE_BYTES)
    }

    fn swap_machine(max_pages: usize) -> Machine {
        let mut cfg = MachineConfig::small(2);
        cfg.memory_words = 1 << 16; // 128 pages
        let mut m = Machine::new(cfg);
        m.enable_swap(SwapConfig {
            max_resident_pages: max_pages,
        });
        m
    }

    #[test]
    fn pages_fault_in_on_demand() {
        let mut m = swap_machine(2);
        assert!(!m.page_resident(Addr(0).page()));
        m.load(0, Addr(0)).unwrap();
        assert!(m.page_resident(Addr(0).page()));
        assert_eq!(m.swap_stats().page_ins, 1);
    }

    #[test]
    fn lru_page_is_evicted_at_capacity() {
        let mut m = swap_machine(2);
        m.load(0, page_addr(0)).unwrap();
        m.load(0, page_addr(1)).unwrap();
        m.load(0, page_addr(0)).unwrap(); // page 1 is now LRU
        m.load(0, page_addr(2)).unwrap();
        assert!(m.page_resident(Addr(0).page()));
        assert!(!m.page_resident(page_addr(1).page()));
        assert_eq!(m.swap_stats().page_outs, 1);
        assert_eq!(m.swap_stats().all_clear_fast_path, 1);
    }

    #[test]
    fn ufo_bits_survive_swap_round_trip() {
        let mut m = swap_machine(2);
        let protected = page_addr(0);
        m.set_ufo_bits(0, protected, UfoBits::FAULT_ON_BOTH)
            .unwrap();
        // Force the protected page out and back in.
        m.load(0, page_addr(1)).unwrap();
        m.load(0, page_addr(2)).unwrap();
        assert!(!m.page_resident(protected.page()));
        assert_eq!(m.swap_stats().ufo_pages_saved, 1);
        m.set_ufo_enabled(1, true);
        assert!(
            matches!(m.store(1, protected, 1), Err(AccessError::UfoFault { .. })),
            "protection must survive the swap round trip"
        );
        assert_eq!(m.swap_stats().ufo_pages_restored, 1);
        assert_eq!(
            m.read_ufo_bits(0, protected).unwrap(),
            UfoBits::FAULT_ON_BOTH
        );
    }

    #[test]
    fn txn_page_fault_aborts_with_address() {
        let mut m = swap_machine(4);
        m.btm_begin(0).unwrap();
        let err = m.load(0, page_addr(3)).unwrap_err();
        match err {
            AccessError::TxnAbort(info) => {
                assert_eq!(info.reason, AbortReason::PageFault);
                assert_eq!(info.addr, Some(page_addr(3)));
            }
            other => panic!("{other:?}"),
        }
        // The hybrid's fix-up: touch the page non-transactionally, retry.
        m.load(0, page_addr(3)).unwrap();
        m.btm_begin(0).unwrap();
        m.load(0, page_addr(3)).unwrap();
        m.btm_end(0).unwrap();
    }

    #[test]
    fn all_clear_fast_path_counted_separately() {
        let mut m = swap_machine(1);
        m.set_ufo_bits(0, page_addr(0), UfoBits::FAULT_ON_WRITE)
            .unwrap();
        m.load(0, page_addr(1)).unwrap(); // evicts protected page 0 (save)
        m.load(0, page_addr(2)).unwrap(); // evicts clean page 1 (fast path)
        let s = m.swap_stats();
        assert_eq!(s.ufo_pages_saved, 1);
        assert_eq!(s.all_clear_fast_path, 1);
    }
}
