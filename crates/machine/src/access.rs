//! The data-access path: loads, stores, and UFO-bit updates.
//!
//! This is where the paper's mechanisms meet: UFO protection checks,
//! directory permission acquisition (with its BTM-killing side effects), L1
//! capacity (set overflow aborts), and the age-ordered hardware contention
//! manager. Both plain (non-transactional) and BTM-transactional accesses
//! take the same path — exactly the property that makes the hybrid's
//! hardware transactions zero-overhead.

use crate::addr::{Addr, LineAddr};
use crate::bits::{cpu_bit, BitIter};
use crate::btm::{AbortInfo, AbortReason};
use crate::cache::L1Insert;
use crate::chaos::ChaosFaultKind;
use crate::config::{HwCmPolicy, UfoKillPolicy};
use crate::machine::{AccessError, AccessResult, CpuId, Machine};
use crate::ufo::{UfoBits, UfoFaultKind};

impl Machine {
    /// Loads the word at `addr` from CPU `cpu`.
    ///
    /// Inside a BTM transaction the load is speculative: the line joins the
    /// transaction's read set and the value reflects the transaction's own
    /// buffered writes.
    ///
    /// # Errors
    ///
    /// * [`AccessError::UfoFault`] if the line is protected fault-on-read
    ///   and `cpu` has UFO faults enabled (the load did not complete).
    /// * [`AccessError::Nacked`] if a transactional request lost age
    ///   arbitration (retry after the already-charged delay).
    /// * [`AccessError::TxnAbort`] if the CPU's transaction aborted
    ///   (overflow, interrupt, pending doom, page fault, …).
    pub fn load(&mut self, cpu: CpuId, addr: Addr) -> AccessResult<u64> {
        self.data_access(cpu, addr, None)
    }

    /// Stores `value` to the word at `addr` from CPU `cpu`.
    ///
    /// Inside a BTM transaction the store is speculative (buffered; the line
    /// joins the write set). Outside, the store is performed in place and
    /// invalidates remote copies — killing any speculative holder, which is
    /// what makes BTM strongly atomic with respect to plain code.
    ///
    /// # Errors
    ///
    /// As for [`Machine::load`], with [`AccessError::UfoFault`] raised
    /// against fault-on-write protection.
    pub fn store(&mut self, cpu: CpuId, addr: Addr, value: u64) -> AccessResult<()> {
        self.data_access(cpu, addr, Some(value)).map(|_| ())
    }

    fn data_access(&mut self, cpu: CpuId, addr: Addr, write: Option<u64>) -> AccessResult<u64> {
        self.begin_op(cpu)?;
        self.stats.cpus[cpu].accesses += 1;
        self.charge(cpu, self.cfg.costs.l1_hit);
        self.page_in_if_needed(cpu, addr)?;
        let line = addr.line();
        let is_write = write.is_some();

        // UFO protection check (skipped when this CPU has faults disabled,
        // as STM transactions do for their own data).
        if self.ufo_enabled[cpu] && self.dir.ufo(line).faults_on(is_write) {
            self.charge(cpu, self.cfg.costs.fault_dispatch);
            self.stats.cpus[cpu].ufo_faults += 1;
            let kind = if is_write {
                UfoFaultKind::Write
            } else {
                UfoFaultKind::Read
            };
            return Err(AccessError::UfoFault { addr, kind });
        }

        // Coherence permission + conflict arbitration.
        if is_write {
            let have_excl =
                self.dir.state(line).owner == Some(cpu as u8) && self.l1[cpu].contains(line);
            if have_excl {
                self.l1[cpu].touch(line);
            } else {
                self.arbitrate(cpu, line, true)?;
                // Invalidate all other cached copies. The holder mask is
                // copied out first so the machine can be mutated per holder
                // without an intermediate Vec.
                let others = self.dir.holders_mask_except(line, cpu);
                let transfer = others != 0;
                for o in BitIter::new(others) {
                    if let Some(e) = self.l1[o].invalidate(line) {
                        if e.dirty {
                            self.charge(cpu, self.cfg.costs.writeback);
                        }
                    }
                    self.dir.remove_sharer(line, o);
                }
                self.fill(cpu, line, transfer)?;
                self.dir.set_exclusive(line, cpu);
            }
        } else {
            if self.l1[cpu].touch(line) {
                // Shared hit: no live remote speculative writer can exist
                // (acquiring exclusive permission would have invalidated us).
            } else {
                self.arbitrate(cpu, line, false)?;
                let owner = self.dir.state(line).owner;
                let transfer = owner.is_some_and(|o| o as usize != cpu);
                self.fill(cpu, line, transfer)?;
                self.dir.add_sharer(line, cpu);
            }
        }

        // Perform the data movement.
        let word = addr.word_index();
        if self.btm[cpu].active {
            if let Some(value) = write {
                // "Ensure the to-be-written block is clean" (paper §3.1).
                if let Some(e) = self.l1[cpu].entry_mut(line) {
                    if e.dirty {
                        e.dirty = false;
                        self.charge(cpu, self.cfg.costs.writeback);
                    }
                }
                self.btm[cpu].spec_writes.insert(word, value);
                self.btm[cpu].write_set.insert(line);
                if let Some(e) = self.l1[cpu].entry_mut(line) {
                    e.sw = true;
                }
                Ok(value)
            } else {
                self.btm[cpu].read_set.insert(line);
                if let Some(e) = self.l1[cpu].entry_mut(line) {
                    e.sr = true;
                }
                let v = self.btm[cpu]
                    .spec_writes
                    .get(&word)
                    .copied()
                    .unwrap_or_else(|| self.mem.read(addr));
                Ok(v)
            }
        } else if let Some(value) = write {
            self.mem_write(addr, value);
            if let Some(e) = self.l1[cpu].entry_mut(line) {
                e.dirty = true;
            }
            Ok(value)
        } else {
            Ok(self.mem.read(addr))
        }
    }

    /// Detects conflicts between this request and other CPUs' speculative
    /// state, resolving them with the configured hardware CM policy.
    ///
    /// A write conflicts with any speculative holder; a read conflicts only
    /// with speculative writers. Non-transactional requesters always win
    /// (strong atomicity; the paper statically prioritizes software
    /// transactions — which issue plain accesses — over hardware ones).
    fn arbitrate(&mut self, cpu: CpuId, line: LineAddr, is_write: bool) -> AccessResult<()> {
        // Chaos: nack a transactional request as if a remote cache were slow
        // to respond. Only live-transaction requesters can be nacked — plain
        // accesses have no retry path and must always succeed.
        if self.btm[cpu].active
            && self.btm[cpu].doomed.is_none()
            && self.chaos_roll(ChaosFaultKind::CoherenceNack)
        {
            let responders = u64::from(self.dir.sharer_count(line)).max(1);
            let delay = self
                .chaos
                .as_ref()
                .map_or(0, |c| c.plan.nack_delay)
                .saturating_mul(responders);
            self.charge(cpu, self.cfg.costs.nack_retry + delay);
            self.stats.cpus[cpu].nacks += 1;
            self.stats.cpus[cpu].nack_stall_cycles += self.cfg.costs.nack_retry + delay;
            self.chaos_record(cpu, ChaosFaultKind::CoherenceNack);
            return Err(AccessError::Nacked);
        }
        // Only CPUs inside a transaction can hold speculative state, so the
        // scan walks the live-transaction mask instead of 0..cpus.
        let mut conflictors = 0u64;
        for o in BitIter::new(self.live_txns & !cpu_bit(cpu)) {
            let conflicts = if is_write {
                self.btm[o].holds_spec(line)
            } else {
                self.btm[o].wrote_spec(line)
            };
            if conflicts {
                conflictors |= cpu_bit(o);
            }
        }
        if conflictors == 0 {
            return Ok(());
        }
        let requester_txn = self.btm[cpu].active && self.btm[cpu].doomed.is_none();
        if requester_txn {
            match self.cfg.hw_cm {
                HwCmPolicy::AgeOrdered => {
                    let my_ts = self.btm[cpu].ts;
                    if BitIter::new(conflictors).any(|o| self.btm[o].ts < my_ts) {
                        // An older transaction holds the line: nack.
                        self.charge(cpu, self.cfg.costs.nack_retry);
                        self.stats.cpus[cpu].nacks += 1;
                        self.stats.cpus[cpu].nack_stall_cycles += self.cfg.costs.nack_retry;
                        return Err(AccessError::Nacked);
                    }
                }
                HwCmPolicy::RequesterWins => {}
            }
            for o in BitIter::new(conflictors) {
                self.doom(o, AbortInfo::at(AbortReason::Conflict, line.base_addr()));
            }
        } else {
            for o in BitIter::new(conflictors) {
                self.doom(
                    o,
                    AbortInfo::at(AbortReason::NonTConflict, line.base_addr()),
                );
            }
        }
        Ok(())
    }

    /// Brings `line` into `cpu`'s L1, charging fill latency and handling the
    /// victim. A bounded BTM whose victim is speculative aborts with
    /// [`AbortReason::Overflow`]; the unbounded model spills the victim to an
    /// idealized overflow structure (its conflict tracking lives in the BTM
    /// read/write sets, so correctness is unaffected).
    fn fill(&mut self, cpu: CpuId, line: LineAddr, transfer: bool) -> AccessResult<()> {
        // Chaos: force a capacity eviction of a speculative line, as if
        // unrelated fills had crowded its set. The unbounded model spills
        // instead of aborting, so it is exempt.
        if !self.cfg.btm_unbounded
            && self.btm[cpu].active
            && self.btm[cpu].doomed.is_none()
            && self.chaos_roll(ChaosFaultKind::ForcedEviction)
        {
            if let Some(victim) = self.l1[cpu].lru_spec_victim() {
                self.chaos_record(cpu, ChaosFaultKind::ForcedEviction);
                let info = AbortInfo::at(AbortReason::Overflow, victim.base_addr());
                self.finalize_abort(cpu, info);
                return Err(AccessError::TxnAbort(info));
            }
        }
        self.stats.cpus[cpu].l1_misses += 1;
        let l2_hit = self.l2.access(line);
        if transfer {
            self.charge(cpu, self.cfg.costs.cache_to_cache);
        } else if l2_hit {
            self.charge(cpu, self.cfg.costs.l2_hit);
        } else {
            self.stats.cpus[cpu].l2_misses += 1;
            self.charge(cpu, self.cfg.costs.mem);
        }
        match self.l1[cpu].insert(line) {
            L1Insert::Done => Ok(()),
            L1Insert::Evicted { victim, dirty } => {
                self.dir.remove_sharer(victim, cpu);
                if dirty {
                    self.charge(cpu, self.cfg.costs.writeback);
                }
                Ok(())
            }
            L1Insert::WouldOverflow { victim, dirty } => {
                if self.cfg.btm_unbounded {
                    self.dir.remove_sharer(victim, cpu);
                    if dirty {
                        self.charge(cpu, self.cfg.costs.writeback);
                    }
                    // SR/SW state was dropped from the L1 but survives in
                    // the BTM read/write sets.
                    Ok(())
                } else {
                    // Undo the fill (the line was never registered in the
                    // directory) and abort for capacity.
                    self.l1[cpu].invalidate(line);
                    let info = AbortInfo::at(AbortReason::Overflow, victim.base_addr());
                    self.finalize_abort(cpu, info);
                    Err(AccessError::TxnAbort(info))
                }
            }
        }
    }

    /// Shared implementation of `set_ufo_bits` / `add_ufo_bits`.
    pub(crate) fn ufo_update(
        &mut self,
        cpu: CpuId,
        addr: Addr,
        bits: UfoBits,
        or_mode: bool,
    ) -> AccessResult<()> {
        self.begin_op(cpu)?;
        self.charge(cpu, self.cfg.costs.ufo_op);
        if self.btm[cpu].active {
            // Updating protection inside a hardware transaction is not part
            // of the modelled ISA: treat as an illegal operation.
            let info = AbortInfo::at(AbortReason::IllegalOp, addr);
            self.finalize_abort(cpu, info);
            return Err(AccessError::TxnAbort(info));
        }
        self.page_in_if_needed(cpu, addr)?;
        let line = addr.line();

        // Chaos: the bit-set's coherence transaction transiently fails and
        // is retried in hardware for 1–3 rounds before succeeding. The
        // failure is invisible except in time; the update below proceeds.
        let mut retry_delay = 0;
        if let Some(c) = &mut self.chaos {
            if c.plan.ufo_set_failure > 0.0 && c.rng.gen_bool(c.plan.ufo_set_failure) {
                retry_delay = c
                    .plan
                    .ufo_retry_cycles
                    .saturating_mul(c.rng.gen_range(1..4));
            }
        }
        if retry_delay > 0 {
            self.charge(cpu, retry_delay);
            self.chaos_record(cpu, ChaosFaultKind::UfoSetRetry);
        }

        // §4.3's proposed coherence change: a set that adds no fault-on-read
        // (read-barrier protection, or a clear) may be published "in the
        // owner state" — no exclusive acquisition, remote copies survive,
        // and only true conflicts (speculative writers) are killed.
        let owner_state = self.cfg.ufo_owner_state_sets && !bits.contains(UfoBits::FAULT_ON_READ);

        // Kill speculative holders per policy (under the faithful protocol
        // the copies are invalidated by the exclusive acquisition below).
        for o in BitIter::new(self.live_txns & !cpu_bit(cpu)) {
            if !self.btm[o].holds_spec(line) {
                continue;
            }
            let true_conflict =
                bits.contains(UfoBits::FAULT_ON_READ) || self.btm[o].wrote_spec(line);
            let kill = if owner_state {
                true_conflict
            } else {
                match self.cfg.ufo_kill_policy {
                    UfoKillPolicy::AllSpeculativeHolders => true,
                    UfoKillPolicy::TrueConflictsOnly => true_conflict,
                }
            };
            if kill {
                self.doom(o, AbortInfo::at(AbortReason::UfoSet, addr));
            }
        }

        if owner_state {
            // Publish the bits without disturbing sharers; join them.
            if !self.l1[cpu].contains(line) {
                self.fill(cpu, line, false)?;
            } else {
                self.l1[cpu].touch(line);
            }
            self.dir.add_sharer(line, cpu);
        } else {
            // Acquire exclusive permission: invalidate all other copies.
            let others = self.dir.holders_mask_except(line, cpu);
            let transfer = others != 0;
            for o in BitIter::new(others) {
                if let Some(e) = self.l1[o].invalidate(line) {
                    if e.dirty {
                        self.charge(cpu, self.cfg.costs.writeback);
                    }
                }
                self.dir.remove_sharer(line, o);
            }
            if !self.l1[cpu].contains(line) || self.dir.state(line).owner != Some(cpu as u8) {
                self.fill(cpu, line, transfer)?;
            } else {
                self.l1[cpu].touch(line);
            }
            self.dir.set_exclusive(line, cpu);
        }

        if or_mode {
            self.dir.or_ufo(line, bits);
        } else {
            self.dir.set_ufo(line, bits);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BtmStatus, MachineConfig};

    fn word(n: u64) -> Addr {
        Addr::from_word_index(n)
    }

    /// Two addresses in the same cache line.
    fn same_line_pair() -> (Addr, Addr) {
        (word(8), word(9))
    }

    #[test]
    fn plain_store_then_load_other_cpu() {
        let mut m = Machine::new(MachineConfig::small(2));
        m.store(0, word(0), 11).unwrap();
        assert_eq!(m.load(1, word(0)).unwrap(), 11);
        // CPU 1's fill was a cache-to-cache transfer; both now share.
        assert!(m.dir.is_sharer(Addr(0).line(), 0) || m.dir.is_sharer(Addr(0).line(), 1));
    }

    #[test]
    fn txn_isolation_from_other_cpu() {
        let mut m = Machine::new(MachineConfig::small(2));
        let a = word(0);
        m.btm_begin(0).unwrap();
        m.store(0, a, 42).unwrap();
        // CPU 1's plain load kills the transaction (strong atomicity) and
        // sees the old value.
        assert_eq!(m.load(1, a).unwrap(), 0);
        let err = m.load(0, a).unwrap_err();
        match err {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::NonTConflict),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn txn_vs_txn_age_arbitration() {
        let mut m = Machine::new(MachineConfig::small(2));
        let a = word(0);
        m.btm_begin(0).unwrap(); // older
        m.btm_begin(1).unwrap(); // younger
        m.store(0, a, 1).unwrap();
        // Younger writer is nacked by older holder.
        assert_eq!(m.store(1, a, 2).unwrap_err(), AccessError::Nacked);
        assert_eq!(m.stats().cpus[1].nacks, 1);
        // Older transaction can still commit.
        m.btm_end(0).unwrap();
        // Retry now succeeds.
        m.store(1, a, 2).unwrap();
        m.btm_end(1).unwrap();
        assert_eq!(m.peek(a), 2);
    }

    #[test]
    fn older_requester_aborts_younger_holder() {
        let mut m = Machine::new(MachineConfig::small(2));
        let a = word(0);
        m.btm_begin(0).unwrap(); // older
        m.btm_begin(1).unwrap(); // younger
        m.store(1, a, 7).unwrap();
        // Older transaction writes: younger holder is doomed.
        m.store(0, a, 8).unwrap();
        let err = m.load(1, a).unwrap_err();
        match err {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::Conflict),
            other => panic!("{other:?}"),
        }
        m.btm_end(0).unwrap();
        assert_eq!(m.peek(a), 8);
    }

    #[test]
    fn requester_wins_policy_never_nacks() {
        let mut cfg = MachineConfig::small(2);
        cfg.hw_cm = HwCmPolicy::RequesterWins;
        let mut m = Machine::new(cfg);
        let a = word(0);
        m.btm_begin(0).unwrap(); // older
        m.btm_begin(1).unwrap(); // younger
        m.store(0, a, 1).unwrap();
        // Younger requester wins under RequesterWins.
        m.store(1, a, 2).unwrap();
        assert!(matches!(m.load(0, a), Err(AccessError::TxnAbort(_))));
        m.btm_end(1).unwrap();
        assert_eq!(m.peek(a), 2);
    }

    #[test]
    fn read_read_sharing_is_not_a_conflict() {
        let mut m = Machine::new(MachineConfig::small(2));
        let a = word(0);
        m.btm_begin(0).unwrap();
        m.btm_begin(1).unwrap();
        assert_eq!(m.load(0, a).unwrap(), 0);
        assert_eq!(m.load(1, a).unwrap(), 0);
        m.btm_end(0).unwrap();
        m.btm_end(1).unwrap();
        assert_eq!(m.stats().aggregate().btm_commits, 2);
    }

    #[test]
    fn set_overflow_aborts_bounded_txn() {
        let mut m = Machine::new(MachineConfig::small(1)); // 4 sets, 2 ways
        m.btm_begin(0).unwrap();
        // Three distinct lines mapping to set 0: lines 0, 4, 8.
        m.load(0, word(0)).unwrap();
        m.load(0, word(4 * 8)).unwrap();
        let err = m.load(0, word(8 * 8)).unwrap_err();
        match err {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::Overflow),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            m.btm_status(0),
            BtmStatus {
                in_txn: false,
                depth: 0,
                last_abort: m.btm_status(0).last_abort,
            }
        );
    }

    #[test]
    fn unbounded_txn_survives_overflow_and_stays_conflict_tracked() {
        let mut m = Machine::new(MachineConfig::small(2).unbounded());
        m.btm_begin(0).unwrap();
        m.load(0, word(0)).unwrap();
        m.load(0, word(4 * 8)).unwrap();
        m.load(0, word(8 * 8)).unwrap(); // spills line 0 (LRU spec victim)
                                         // A plain store by CPU 1 to the spilled line still kills the txn.
        m.store(1, word(0), 5).unwrap();
        assert!(matches!(m.load(0, word(0)), Err(AccessError::TxnAbort(_))));
    }

    #[test]
    fn unbounded_txn_commits_large_write_set() {
        let mut m = Machine::new(MachineConfig::small(1).unbounded());
        m.btm_begin(0).unwrap();
        for i in 0..32 {
            m.store(0, word(i * 8), i).unwrap();
        }
        m.btm_end(0).unwrap();
        for i in 0..32 {
            assert_eq!(m.peek(word(i * 8)), i);
        }
    }

    #[test]
    fn ufo_fault_on_plain_access() {
        let mut m = Machine::new(MachineConfig::small(2));
        let (a, b) = same_line_pair();
        m.set_ufo_bits(0, a, UfoBits::FAULT_ON_BOTH).unwrap();
        m.set_ufo_enabled(1, true);
        match m.load(1, b).unwrap_err() {
            AccessError::UfoFault { addr, kind } => {
                assert_eq!(addr, b);
                assert_eq!(kind, UfoFaultKind::Read);
            }
            other => panic!("{other:?}"),
        }
        // Same line, write: also faults.
        assert!(matches!(
            m.store(1, a, 1),
            Err(AccessError::UfoFault {
                kind: UfoFaultKind::Write,
                ..
            })
        ));
        // With faults disabled, the access sails through.
        m.set_ufo_enabled(1, false);
        assert_eq!(m.load(1, b).unwrap(), 0);
        assert_eq!(m.stats().cpus[1].ufo_faults, 2);
    }

    #[test]
    fn fault_on_write_permits_reads() {
        let mut m = Machine::new(MachineConfig::small(2));
        let a = word(0);
        m.set_ufo_bits(0, a, UfoBits::FAULT_ON_WRITE).unwrap();
        m.set_ufo_enabled(1, true);
        assert_eq!(m.load(1, a).unwrap(), 0);
        assert!(m.store(1, a, 1).is_err());
    }

    #[test]
    fn add_ufo_bits_ors_and_read_reports() {
        let mut m = Machine::new(MachineConfig::small(1));
        let a = word(0);
        m.set_ufo_bits(0, a, UfoBits::FAULT_ON_WRITE).unwrap();
        m.add_ufo_bits(0, a, UfoBits::FAULT_ON_READ).unwrap();
        assert_eq!(m.read_ufo_bits(0, a).unwrap(), UfoBits::FAULT_ON_BOTH);
        m.set_ufo_bits(0, a, UfoBits::NONE).unwrap();
        assert_eq!(m.read_ufo_bits(0, a).unwrap(), UfoBits::NONE);
    }

    #[test]
    fn ufo_set_kills_speculative_reader() {
        let mut m = Machine::new(MachineConfig::small(2));
        let a = word(0);
        m.btm_begin(1).unwrap();
        m.load(1, a).unwrap();
        // An STM read barrier on CPU 0 sets fault-on-write: false conflict,
        // but the exclusive acquisition kills the speculative reader.
        m.set_ufo_bits(0, a, UfoBits::FAULT_ON_WRITE).unwrap();
        match m.load(1, a).unwrap_err() {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::UfoSet),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precise_ufo_kill_policy_spares_false_conflicts() {
        let mut cfg = MachineConfig::small(2);
        cfg.ufo_kill_policy = UfoKillPolicy::TrueConflictsOnly;
        let mut m = Machine::new(cfg);
        let a = word(0);
        m.btm_begin(1).unwrap();
        m.load(1, a).unwrap();
        // Read-barrier protection (fault-on-write only) vs a speculative
        // reader: a false conflict, spared under the precise policy.
        m.set_ufo_bits(0, a, UfoBits::FAULT_ON_WRITE).unwrap();
        m.load(1, a).unwrap();
        m.btm_end(1).unwrap();
        // Write-barrier protection (includes fault-on-read) is a true
        // conflict and still kills.
        m.btm_begin(1).unwrap();
        m.load(1, a).unwrap();
        m.set_ufo_bits(0, a, UfoBits::FAULT_ON_BOTH).unwrap();
        assert!(matches!(m.load(1, a), Err(AccessError::TxnAbort(_))));
    }

    #[test]
    fn btm_txn_takes_ufo_fault_without_dying() {
        let mut m = Machine::new(MachineConfig::small(2));
        let a = word(0);
        m.set_ufo_bits(0, a, UfoBits::FAULT_ON_BOTH).unwrap();
        m.set_ufo_enabled(1, true);
        m.btm_begin(1).unwrap();
        // The transactional access faults; the transaction itself is alive
        // and software chooses whether to stall or abort.
        assert!(matches!(m.load(1, a), Err(AccessError::UfoFault { .. })));
        assert!(m.btm_status(1).in_txn);
        let info = m.btm_abort_with(1, AbortInfo::at(AbortReason::UfoFault, a));
        assert_eq!(info.reason, AbortReason::UfoFault);
    }

    #[test]
    fn set_ufo_inside_txn_is_illegal() {
        let mut m = Machine::new(MachineConfig::small(1));
        m.btm_begin(0).unwrap();
        let err = m
            .set_ufo_bits(0, word(0), UfoBits::FAULT_ON_WRITE)
            .unwrap_err();
        match err {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::IllegalOp),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn txn_reads_own_writes_and_tracks_sets() {
        let mut m = Machine::new(MachineConfig::small(1));
        let (a, b) = same_line_pair();
        m.store(0, a, 1).unwrap();
        m.btm_begin(0).unwrap();
        assert_eq!(m.load(0, a).unwrap(), 1);
        m.store(0, a, 2).unwrap();
        assert_eq!(m.load(0, a).unwrap(), 2);
        assert_eq!(m.load(0, b).unwrap(), 0, "other word in line unaffected");
        m.btm_end(0).unwrap();
        assert_eq!(m.peek(a), 2);
    }

    #[test]
    fn dirty_line_written_back_before_speculative_write() {
        let mut m = Machine::new(MachineConfig::small(1));
        let a = word(0);
        m.store(0, a, 1).unwrap(); // line now dirty in L1
        m.btm_begin(0).unwrap();
        m.store(0, a, 2).unwrap();
        // Abort: memory must hold the pre-transaction value 1, which
        // required the dirty line to be cleaned first.
        m.btm_abort(0);
        assert_eq!(m.peek(a), 1);
        assert_eq!(m.load(0, a).unwrap(), 1);
    }

    #[test]
    fn cache_misses_are_counted() {
        let mut m = Machine::new(MachineConfig::small(1));
        m.load(0, word(0)).unwrap();
        m.load(0, word(0)).unwrap();
        assert_eq!(m.stats().cpus[0].accesses, 2);
        assert_eq!(m.stats().cpus[0].l1_misses, 1);
        assert_eq!(m.stats().cpus[0].l2_misses, 1);
    }
}
