//! The simulated physical memory image.
//!
//! Data always lives here (the caches are tag-only models); BTM speculative
//! writes are buffered per-CPU and only applied at commit, so the image never
//! contains uncommitted hardware-transactional state.

use crate::addr::Addr;

/// A flat, word-addressed memory image.
#[derive(Clone, Debug)]
pub(crate) struct MemImage {
    words: Vec<u64>,
}

impl MemImage {
    pub fn new(words: u64) -> Self {
        MemImage {
            words: vec![0; usize::try_from(words).expect("memory size fits usize")],
        }
    }

    /// Number of words.
    pub fn len(&self) -> u64 {
        self.words.len() as u64
    }

    fn index(&self, addr: Addr) -> usize {
        let idx = addr.word_index();
        assert!(
            idx < self.len(),
            "simulated address {addr} out of range ({} words)",
            self.len()
        );
        idx as usize
    }

    pub fn read(&self, addr: Addr) -> u64 {
        self.words[self.index(addr)]
    }

    pub fn write(&mut self, addr: Addr, value: u64) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// Replaces the whole image, e.g. when rebooting from a crash snapshot.
    pub fn load(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.words.len(), "image size mismatch on load");
        self.words.copy_from_slice(words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = MemImage::new(16);
        let a = Addr::from_word_index(3);
        assert_eq!(m.read(a), 0);
        m.write(a, 42);
        assert_eq!(m.read(a), 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        MemImage::new(4).read(Addr::from_word_index(4));
    }
}
