//! Set-associative cache models.
//!
//! The caches are *tag-only*: data always lives in the memory image (plus
//! per-transaction speculative write buffers), so the cache models exist to
//! provide timing and — crucially for BTM — capacity. A BTM transaction whose
//! speculative lines no longer fit in an L1 set must abort with
//! `AbortReason::Overflow`, exactly as in the paper.

use crate::addr::LineAddr;

/// Geometry of a set-associative cache with 64-byte lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry with the given number of sets and ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either argument is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be nonzero");
        CacheGeometry { sets, ways }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * crate::LINE_BYTES as usize
    }

    /// The set index for a line.
    #[must_use]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }
}

/// One resident line in an L1 cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct L1Entry {
    pub line: LineAddr,
    /// Dirty (modified relative to the next level). Speculative writes do
    /// not set `dirty`; their data lives in the transaction's write buffer.
    pub dirty: bool,
    /// Speculatively read by the current BTM transaction.
    pub sr: bool,
    /// Speculatively written by the current BTM transaction.
    pub sw: bool,
    /// LRU timestamp (larger = more recently used).
    pub lru: u64,
}

/// What happened when a line was inserted into an L1 set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum L1Insert {
    /// Room was available (or the line was already resident).
    Done,
    /// A non-speculative victim was evicted; `dirty` says whether it needs a
    /// writeback.
    Evicted { victim: LineAddr, dirty: bool },
    /// Every candidate victim is speculative: inserting would lose
    /// transactional state. The caller aborts the transaction with
    /// `Overflow` (or, for the unbounded model, spills the victim to the
    /// idealized overflow structure).
    WouldOverflow { victim: LineAddr, dirty: bool },
}

/// A per-CPU L1 data cache model with speculative (SR/SW) bits.
#[derive(Clone, Debug)]
pub(crate) struct L1Cache {
    geo: CacheGeometry,
    sets: Vec<Vec<L1Entry>>,
    tick: u64,
}

#[allow(dead_code)] // several accessors exist for tests and diagnostics
impl L1Cache {
    pub fn new(geo: CacheGeometry) -> Self {
        L1Cache {
            geo,
            // Each set holds at most `ways` entries; reserving up front means
            // fills never reallocate.
            sets: (0..geo.sets())
                .map(|_| Vec::with_capacity(geo.ways()))
                .collect(),
            tick: 0,
        }
    }

    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Whether the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.geo.set_of(line)]
            .iter()
            .any(|e| e.line == line)
    }

    pub fn entry(&self, line: LineAddr) -> Option<&L1Entry> {
        self.sets[self.geo.set_of(line)]
            .iter()
            .find(|e| e.line == line)
    }

    pub fn entry_mut(&mut self, line: LineAddr) -> Option<&mut L1Entry> {
        let set = self.geo.set_of(line);
        self.sets[set].iter_mut().find(|e| e.line == line)
    }

    /// Touches a resident line (LRU update) and returns whether it was a hit.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let t = self.bump();
        if let Some(e) = self.entry_mut(line) {
            e.lru = t;
            true
        } else {
            false
        }
    }

    /// Inserts `line`; evicts the LRU non-speculative entry if the set is
    /// full. If every entry in the set is speculative, returns
    /// [`L1Insert::WouldOverflow`] naming the LRU speculative victim and the
    /// line is inserted anyway (the caller decides whether that constitutes
    /// an abort or an unbounded-mode spill; in the abort case the whole
    /// transaction's lines are flash-cleared immediately after).
    pub fn insert(&mut self, line: LineAddr) -> L1Insert {
        let t = self.bump();
        let ways = self.geo.ways();
        // Borrow the set slice once: every way scan below works on `set`
        // directly instead of re-indexing (and re-bounds-checking)
        // `self.sets[..]` per step.
        let set = &mut self.sets[self.geo.set_of(line)];
        if let Some(e) = set.iter_mut().find(|e| e.line == line) {
            e.lru = t;
            return L1Insert::Done;
        }
        let entry = L1Entry {
            line,
            dirty: false,
            sr: false,
            sw: false,
            lru: t,
        };
        if set.len() < ways {
            set.push(entry);
            return L1Insert::Done;
        }
        // Prefer the LRU non-speculative victim.
        let victim_idx = set
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.sr && !e.sw)
            .min_by_key(|(_, e)| e.lru)
            .map(|(i, _)| i);
        if let Some(i) = victim_idx {
            let victim = std::mem::replace(&mut set[i], entry);
            return L1Insert::Evicted {
                victim: victim.line,
                dirty: victim.dirty,
            };
        }
        // All ways hold speculative lines.
        let (i, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.lru)
            .expect("set has at least one way");
        let victim = std::mem::replace(&mut set[i], entry);
        L1Insert::WouldOverflow {
            victim: victim.line,
            dirty: victim.dirty,
        }
    }

    /// Removes a line (coherence invalidation), returning its entry.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<L1Entry> {
        let set = self.geo.set_of(line);
        let idx = self.sets[set].iter().position(|e| e.line == line)?;
        Some(self.sets[set].remove(idx))
    }

    /// Clears all SR/SW bits (transaction commit) without touching residency.
    pub fn flash_clear_spec(&mut self) {
        for set in &mut self.sets {
            for e in set.iter_mut() {
                e.sr = false;
                e.sw = false;
            }
        }
    }

    /// Drops all speculatively-written lines and clears SR bits (abort):
    /// speculative data never reached memory, so the lines are invalidated.
    pub fn flash_abort_spec(&mut self) {
        for set in &mut self.sets {
            set.retain(|e| !e.sw);
            for e in set.iter_mut() {
                e.sr = false;
            }
        }
    }

    /// The least-recently-used speculative line, if any (the chaos engine's
    /// forced-eviction victim picker).
    pub fn lru_spec_victim(&self) -> Option<LineAddr> {
        self.sets
            .iter()
            .flatten()
            .filter(|e| e.sr || e.sw)
            .min_by_key(|e| e.lru)
            .map(|e| e.line)
    }

    /// Number of resident lines (for tests and stats).
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates over all resident entries.
    pub fn entries(&self) -> impl Iterator<Item = &L1Entry> {
        self.sets.iter().flatten()
    }

    /// Asserts structural invariants: set occupancy within associativity,
    /// no duplicate tags, and every entry mapped to its correct set.
    pub fn validate(&self) {
        for (i, set) in self.sets.iter().enumerate() {
            assert!(
                set.len() <= self.geo.ways(),
                "set {i} holds {} lines but has {} ways",
                set.len(),
                self.geo.ways()
            );
            for (j, e) in set.iter().enumerate() {
                assert_eq!(self.geo.set_of(e.line), i, "line {:?} in wrong set", e.line);
                for other in &set[j + 1..] {
                    assert_ne!(e.line, other.line, "duplicate tag {:?}", e.line);
                }
            }
        }
    }
}

/// The shared L2: tag-only, timing-only (no speculative state).
#[derive(Clone, Debug)]
pub(crate) struct L2Cache {
    geo: CacheGeometry,
    sets: Vec<Vec<(LineAddr, u64)>>,
    tick: u64,
}

impl L2Cache {
    pub fn new(geo: CacheGeometry) -> Self {
        L2Cache {
            geo,
            sets: (0..geo.sets())
                .map(|_| Vec::with_capacity(geo.ways()))
                .collect(),
            tick: 0,
        }
    }

    /// Touches `line`, returning `true` on a hit; on a miss the line is
    /// installed (evicting LRU — the L2 is not inclusive in this model, so
    /// evictions have no L1 side effects).
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let t = self.tick;
        let ways = self.geo.ways();
        let set = &mut self.sets[self.geo.set_of(line)];
        if let Some(e) = set.iter_mut().find(|e| e.0 == line) {
            e.1 = t;
            return true;
        }
        if set.len() >= ways {
            let (i, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .expect("nonempty set");
            set.remove(i);
        }
        set.push((line, t));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn geometry_capacity() {
        let g = CacheGeometry::new(128, 4);
        assert_eq!(g.capacity_bytes(), 32 * 1024);
        assert_eq!(g.set_of(line(129)), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheGeometry::new(3, 2);
    }

    #[test]
    fn insert_hits_and_evicts_lru() {
        let mut c = L1Cache::new(CacheGeometry::new(1, 2));
        assert_eq!(c.insert(line(0)), L1Insert::Done);
        assert_eq!(c.insert(line(1)), L1Insert::Done);
        assert!(c.touch(line(0))); // 1 is now LRU
        match c.insert(line(2)) {
            L1Insert::Evicted { victim, dirty } => {
                assert_eq!(victim, line(1));
                assert!(!dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(line(0)) && c.contains(line(2)) && !c.contains(line(1)));
    }

    #[test]
    fn speculative_lines_are_protected_then_overflow() {
        let mut c = L1Cache::new(CacheGeometry::new(1, 2));
        c.insert(line(0));
        c.entry_mut(line(0)).unwrap().sr = true;
        c.insert(line(1));
        // Non-speculative line 1 is preferred as victim even though 0 is LRU.
        match c.insert(line(2)) {
            L1Insert::Evicted { victim, .. } => assert_eq!(victim, line(1)),
            other => panic!("{other:?}"),
        }
        c.entry_mut(line(2)).unwrap().sw = true;
        // Now both ways are speculative: overflow.
        match c.insert(line(3)) {
            L1Insert::WouldOverflow { victim, .. } => assert_eq!(victim, line(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flash_clear_and_abort() {
        let mut c = L1Cache::new(CacheGeometry::new(2, 2));
        c.insert(line(0));
        c.insert(line(1));
        c.entry_mut(line(0)).unwrap().sr = true;
        c.entry_mut(line(1)).unwrap().sw = true;
        let mut commit = c.clone();
        commit.flash_clear_spec();
        assert_eq!(commit.resident(), 2);
        assert!(commit.entries().all(|e| !e.sr && !e.sw));
        c.flash_abort_spec();
        assert_eq!(c.resident(), 1); // speculatively-written line dropped
        assert!(c.contains(line(0)) && !c.contains(line(1)));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = L1Cache::new(CacheGeometry::new(2, 2));
        c.insert(line(5));
        assert!(c.invalidate(line(5)).is_some());
        assert!(c.invalidate(line(5)).is_none());
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn l2_hit_miss_and_eviction() {
        let mut l2 = L2Cache::new(CacheGeometry::new(1, 2));
        assert!(!l2.access(line(0)));
        assert!(l2.access(line(0)));
        assert!(!l2.access(line(1)));
        assert!(!l2.access(line(2))); // evicts 0
        assert!(!l2.access(line(0)));
    }
}
