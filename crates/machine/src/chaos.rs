//! Chaos engine: deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] installed via
//! [`MachineConfig::with_fault_plan`](crate::MachineConfig::with_fault_plan)
//! makes the machine inject hardware-level misfortune — spurious BTM aborts,
//! forced capacity evictions of speculative lines, delayed/nacked coherence
//! responses, transient UFO bit-set failures, and swap thrash — at seeded
//! pseudo-random points. Every injected fault is charged in simulated cycles
//! and drawn from a machine-owned [`SimRng`], so a run with a given plan is
//! bit-for-bit reproducible from its seed: the same workload under the same
//! plan produces the same interleaving, the same aborts, and the same final
//! clocks. That reproducibility is the point — a torture sweep that fails
//! prints its seed, and replaying that seed replays the exact failure.
//!
//! Injection sites live next to the mechanisms they perturb (`machine.rs`,
//! `access.rs`, `swap.rs`); this module owns the plan, the per-machine
//! injection state, the counters, and the drainable event journal that the
//! software layers forward into their trace logs.

use std::fmt;

use crate::machine::{CpuId, Machine};
use crate::rng::SimRng;

/// The kinds of faults the chaos engine can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChaosFaultKind {
    /// A live BTM transaction is doomed for no architectural reason
    /// (modelling e.g. a debug interrupt or a microarchitectural replay),
    /// aborting with [`AbortReason::Spurious`](crate::AbortReason::Spurious).
    SpuriousAbort,
    /// A speculative L1 line is evicted as if unrelated fills had crowded
    /// its set, aborting the transaction with
    /// [`AbortReason::Overflow`](crate::AbortReason::Overflow).
    ForcedEviction,
    /// A transactional coherence request is nacked as if a remote cache were
    /// slow to respond; the requester is charged the retry delay (scaled by
    /// the number of caches that would have had to answer) and retries.
    CoherenceNack,
    /// A `set/add_ufo_bits` coherence transaction transiently fails and is
    /// retried in hardware after a bounded delay; the operation still
    /// completes (the failure is invisible except in time).
    UfoSetRetry,
    /// A resident page is reclaimed by the (simulated) OS out from under an
    /// access, which then re-faults exactly like a cold miss. Inside a BTM
    /// transaction this surfaces as a
    /// [`AbortReason::PageFault`](crate::AbortReason::PageFault) abort.
    SwapThrash,
    /// Power is lost at an instruction boundary: the durable image (fenced
    /// lines only) is latched as a
    /// [`CrashImage`](crate::CrashImage) and everything volatile is
    /// considered gone. Only injected on machines with a persistence domain,
    /// and at most once per run (the first failure is the one that counts —
    /// the remainder of the run is ghost execution harnesses ignore).
    PowerFail,
}

impl ChaosFaultKind {
    /// All kinds, in a stable order (for stats tables).
    #[must_use]
    pub const fn all() -> [ChaosFaultKind; 6] {
        use ChaosFaultKind::*;
        [
            SpuriousAbort,
            ForcedEviction,
            CoherenceNack,
            UfoSetRetry,
            SwapThrash,
            PowerFail,
        ]
    }
}

impl fmt::Display for ChaosFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChaosFaultKind::SpuriousAbort => "spurious-abort",
            ChaosFaultKind::ForcedEviction => "forced-eviction",
            ChaosFaultKind::CoherenceNack => "coherence-nack",
            ChaosFaultKind::UfoSetRetry => "ufo-set-retry",
            ChaosFaultKind::SwapThrash => "swap-thrash",
            ChaosFaultKind::PowerFail => "power-fail",
        };
        f.write_str(s)
    }
}

/// A seeded fault-injection plan: per-fault probabilities plus the delays
/// injected faults cost. Rates are per *opportunity* (e.g. per instruction
/// boundary for spurious aborts, per L1 fill for forced evictions), rolled
/// on a dedicated machine-owned PRNG seeded from [`FaultPlan::seed`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injection PRNG. Two machines with the same plan and
    /// workload behave identically; change only the seed to get a different
    /// (but equally reproducible) fault schedule.
    pub seed: u64,
    /// Probability a live transaction is spuriously doomed at an
    /// instruction boundary.
    pub spurious_abort: f64,
    /// Probability an L1 fill inside a transaction force-evicts a
    /// speculative line (capacity abort).
    pub forced_eviction: f64,
    /// Probability a transactional coherence request is nacked.
    pub coherence_nack: f64,
    /// Probability a UFO bit-set transiently fails and retries.
    pub ufo_set_failure: f64,
    /// Probability a resident-page touch thrashes (page is reclaimed and
    /// must re-fault). Only meaningful when paging is enabled.
    pub swap_thrash: f64,
    /// Probability power is lost at an instruction boundary. Only meaningful
    /// on machines with a persistence domain; at most one failure latches
    /// per run.
    pub power_fail: f64,
    /// Deterministic power failure: latch at the first instruction boundary
    /// at which the issuing CPU's clock reaches this cycle. Independent of
    /// the probabilistic `power_fail` rate and of the injection PRNG, so a
    /// fail-point sweep never perturbs the fault schedule of the other
    /// kinds.
    pub power_fail_at: Option<u64>,
    /// Extra delay (cycles) per responding cache charged by an injected
    /// nack, on top of the cost model's `nack_retry`.
    pub nack_delay: u64,
    /// Delay (cycles) per retry round of a transiently-failed UFO bit-set;
    /// each injection retries 1–3 rounds.
    pub ufo_retry_cycles: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a control arm: the machinery
    /// runs, the RNG is consulted never, behaviour is identical to no plan).
    #[must_use]
    pub const fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            spurious_abort: 0.0,
            forced_eviction: 0.0,
            coherence_nack: 0.0,
            ufo_set_failure: 0.0,
            swap_thrash: 0.0,
            power_fail: 0.0,
            power_fail_at: None,
            nack_delay: 0,
            ufo_retry_cycles: 0,
        }
    }

    /// A moderate dose of every fault kind — the torture suite's default.
    #[must_use]
    pub const fn mixed(seed: u64) -> Self {
        FaultPlan {
            spurious_abort: 0.02,
            forced_eviction: 0.01,
            coherence_nack: 0.05,
            ufo_set_failure: 0.05,
            swap_thrash: 0.01,
            nack_delay: 40,
            ufo_retry_cycles: 200,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Heavy spurious-abort and forced-eviction pressure: exercises the
    /// retry/failover ladder.
    #[must_use]
    pub const fn abort_storm(seed: u64) -> Self {
        FaultPlan {
            spurious_abort: 0.15,
            forced_eviction: 0.05,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Heavy coherence-nack pressure with long response delays: exercises
    /// nack-retry loops and (with an aggressive contention-management
    /// policy) livelock resolution.
    #[must_use]
    pub const fn nack_storm(seed: u64) -> Self {
        FaultPlan {
            coherence_nack: 0.30,
            nack_delay: 100,
            ufo_set_failure: 0.10,
            ufo_retry_cycles: 300,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Whether [`FaultPlan::seed`] can change this plan's behaviour: true
    /// iff at least one injection rate is non-zero (the injection PRNG is
    /// only ever consulted for non-zero rates). A [`FaultPlan::quiet`]
    /// plan is deliberately seed-*insensitive* — it is a control arm whose
    /// behaviour must be identical to no plan at all — so sweeping seeds
    /// over one silently collapses the sweep's seed dimension to a single
    /// cell. Seed sweeps should be built through
    /// `ufotm_sim::for_each_seed_plan`, which rejects that shape.
    #[must_use]
    pub fn seed_sensitive(&self) -> bool {
        ChaosFaultKind::all()
            .iter()
            .any(|&kind| self.rate(kind) > 0.0)
    }

    pub(crate) fn rate(&self, kind: ChaosFaultKind) -> f64 {
        match kind {
            ChaosFaultKind::SpuriousAbort => self.spurious_abort,
            ChaosFaultKind::ForcedEviction => self.forced_eviction,
            ChaosFaultKind::CoherenceNack => self.coherence_nack,
            ChaosFaultKind::UfoSetRetry => self.ufo_set_failure,
            ChaosFaultKind::SwapThrash => self.swap_thrash,
            ChaosFaultKind::PowerFail => self.power_fail,
        }
    }

    /// Checks every injection rate is a probability.
    ///
    /// The preset constructors are `const fn` and cannot examine floats, so
    /// a hand-built plan could otherwise smuggle a NaN or out-of-range rate
    /// into the injection PRNG, where it would silently skew (or panic deep
    /// inside) every roll. [`Machine::new`] and
    /// [`MachineConfig::with_fault_plan`](crate::MachineConfig::with_fault_plan)
    /// call this, so a bad plan fails fast with the offending field named.
    ///
    /// # Panics
    ///
    /// Panics if any rate is NaN, infinite, or outside `[0, 1]`.
    pub fn validate(&self) {
        for kind in ChaosFaultKind::all() {
            let rate = self.rate(kind);
            assert!(
                rate.is_finite() && (0.0..=1.0).contains(&rate),
                "FaultPlan {kind} rate must be a probability in [0, 1], got {rate}"
            );
        }
    }
}

/// One injected fault, recorded in the machine's drainable journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// The injecting CPU's local clock when the fault was injected.
    pub cycle: u64,
    /// The CPU the fault was injected into.
    pub cpu: CpuId,
    /// What was injected.
    pub kind: ChaosFaultKind,
}

/// Counters of injected faults, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Spurious transaction dooms injected.
    pub spurious_aborts: u64,
    /// Forced speculative-line evictions injected.
    pub forced_evictions: u64,
    /// Coherence nacks injected.
    pub injected_nacks: u64,
    /// Transient UFO bit-set failures injected.
    pub ufo_set_retries: u64,
    /// Swap-thrash reclaims injected.
    pub swap_thrashes: u64,
    /// Power failures latched (at most one per run).
    pub power_fails: u64,
}

impl ChaosStats {
    /// Total injected faults across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.spurious_aborts
            + self.forced_evictions
            + self.injected_nacks
            + self.ufo_set_retries
            + self.swap_thrashes
            + self.power_fails
    }

    /// Adds another machine's injection counters into this one.
    ///
    /// Destructures exhaustively so a newly added counter is a compile
    /// error until it is merged.
    pub fn merge(&mut self, other: &ChaosStats) {
        let ChaosStats {
            spurious_aborts,
            forced_evictions,
            injected_nacks,
            ufo_set_retries,
            swap_thrashes,
            power_fails,
        } = other;
        self.spurious_aborts += spurious_aborts;
        self.forced_evictions += forced_evictions;
        self.injected_nacks += injected_nacks;
        self.ufo_set_retries += ufo_set_retries;
        self.swap_thrashes += swap_thrashes;
        self.power_fails += power_fails;
    }

    fn bump(&mut self, kind: ChaosFaultKind) {
        let c = match kind {
            ChaosFaultKind::SpuriousAbort => &mut self.spurious_aborts,
            ChaosFaultKind::ForcedEviction => &mut self.forced_evictions,
            ChaosFaultKind::CoherenceNack => &mut self.injected_nacks,
            ChaosFaultKind::UfoSetRetry => &mut self.ufo_set_retries,
            ChaosFaultKind::SwapThrash => &mut self.swap_thrashes,
            ChaosFaultKind::PowerFail => &mut self.power_fails,
        };
        *c += 1;
    }
}

/// Per-machine injection state (crate-internal).
#[derive(Clone, Debug)]
pub(crate) struct ChaosState {
    pub plan: FaultPlan,
    pub rng: SimRng,
    pub stats: ChaosStats,
    /// Journal of injected faults, drained by the software layers (the
    /// hybrid runtime forwards them into its trace log).
    pub journal: Vec<ChaosEvent>,
}

impl ChaosState {
    pub fn new(plan: FaultPlan) -> Self {
        ChaosState {
            rng: SimRng::seed_from_u64(plan.seed),
            stats: ChaosStats::default(),
            journal: Vec::new(),
            plan,
        }
    }
}

impl Machine {
    /// Chaos-injection counters (all zero when no fault plan is installed).
    #[must_use]
    pub fn chaos_stats(&self) -> ChaosStats {
        self.chaos.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// Drains and returns the journal of injected faults accumulated since
    /// the last drain (empty when no fault plan is installed).
    pub fn drain_chaos_events(&mut self) -> Vec<ChaosEvent> {
        self.chaos
            .as_mut()
            .map(|c| std::mem::take(&mut c.journal))
            .unwrap_or_default()
    }

    /// Rolls the plan's rate for `kind`. A zero rate never consults the RNG,
    /// so a plan with some rates zeroed draws the same stream for the
    /// remaining kinds regardless of which are disabled.
    pub(crate) fn chaos_roll(&mut self, kind: ChaosFaultKind) -> bool {
        let Some(c) = &mut self.chaos else {
            return false;
        };
        let rate = c.plan.rate(kind);
        rate > 0.0 && c.rng.gen_bool(rate)
    }

    /// Records an injected fault in the stats and journal.
    pub(crate) fn chaos_record(&mut self, cpu: CpuId, kind: ChaosFaultKind) {
        let cycle = self.clock[cpu];
        if let Some(c) = &mut self.chaos {
            c.stats.bump(kind);
            c.journal.push(ChaosEvent { cycle, cpu, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbortReason, AccessError, Addr, MachineConfig, SwapConfig, PAGE_BYTES};

    fn word(n: u64) -> Addr {
        Addr::from_word_index(n)
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let cfg = MachineConfig::small(2).with_fault_plan(FaultPlan::quiet(1));
        let mut m = Machine::new(cfg);
        m.btm_begin(0).unwrap();
        for i in 0..8 {
            m.store(0, word(i * 8), i).unwrap();
            let _ = m.load(0, word(i * 8));
        }
        assert_eq!(m.chaos_stats().total(), 0);
        assert!(m.drain_chaos_events().is_empty());
    }

    #[test]
    fn seed_sensitivity_classifies_the_presets() {
        // `quiet` is the control arm: by design the seed changes nothing
        // (see `quiet_plan_injects_nothing` — the PRNG is never rolled),
        // and `seed_sensitive` must say so or seed sweeps built over it
        // would silently run the same cell N times.
        assert!(!FaultPlan::quiet(0).seed_sensitive());
        assert!(!FaultPlan::quiet(42).seed_sensitive());
        // A deterministic fail-point never consults the injection PRNG
        // either: varying only the seed over such a plan is still vacuous.
        let mut crash_only = FaultPlan::quiet(7);
        crash_only.power_fail_at = Some(10_000);
        assert!(!crash_only.seed_sensitive());
        // Every injecting preset is seed-sensitive.
        assert!(FaultPlan::mixed(0).seed_sensitive());
        assert!(FaultPlan::abort_storm(0).seed_sensitive());
        assert!(FaultPlan::nack_storm(0).seed_sensitive());
        // A single non-zero rate suffices.
        let mut one = FaultPlan::quiet(0);
        one.power_fail = 0.001;
        assert!(one.seed_sensitive());
    }

    #[test]
    fn spurious_abort_dooms_live_transaction() {
        let mut plan = FaultPlan::quiet(7);
        plan.spurious_abort = 1.0;
        let mut m = Machine::new(MachineConfig::small(1).with_fault_plan(plan));
        // Plain code is never affected.
        m.store(0, word(0), 1).unwrap();
        m.btm_begin(0).unwrap();
        let err = m.store(0, word(0), 2).unwrap_err();
        match err {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::Spurious),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.peek(word(0)), 1, "speculative store discarded");
        assert_eq!(m.chaos_stats().spurious_aborts, 1);
        let events = m.drain_chaos_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, ChaosFaultKind::SpuriousAbort);
        assert!(m.drain_chaos_events().is_empty(), "journal drained");
    }

    #[test]
    fn forced_eviction_overflows_transaction() {
        let mut plan = FaultPlan::quiet(3);
        plan.forced_eviction = 1.0;
        let mut m = Machine::new(MachineConfig::small(1).with_fault_plan(plan));
        m.btm_begin(0).unwrap();
        // First fill: no speculative victim exists yet, so no injection.
        m.load(0, word(0)).unwrap();
        // Second fill: the first line is now speculative and is forced out.
        let err = m.load(0, word(64)).unwrap_err();
        match err {
            AccessError::TxnAbort(info) => {
                assert_eq!(info.reason, AbortReason::Overflow);
                assert_eq!(info.addr, Some(word(0)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.chaos_stats().forced_evictions, 1);
    }

    #[test]
    fn forced_eviction_skipped_when_unbounded() {
        let mut plan = FaultPlan::quiet(3);
        plan.forced_eviction = 1.0;
        let mut m = Machine::new(MachineConfig::small(1).unbounded().with_fault_plan(plan));
        m.btm_begin(0).unwrap();
        m.load(0, word(0)).unwrap();
        m.load(0, word(64)).unwrap();
        m.btm_end(0).unwrap();
        assert_eq!(m.chaos_stats().forced_evictions, 0);
    }

    #[test]
    fn injected_nack_charges_scaled_delay() {
        let mut plan = FaultPlan::quiet(9);
        plan.coherence_nack = 1.0;
        plan.nack_delay = 100;
        let mut m = Machine::new(MachineConfig::small(2).with_fault_plan(plan));
        m.btm_begin(0).unwrap();
        let before = m.now(0);
        assert_eq!(m.load(0, word(0)).unwrap_err(), AccessError::Nacked);
        // nack_retry (20) + nack_delay × max(sharers, 1) = 120, plus the
        // l1_hit charge from the access preamble.
        assert!(
            m.now(0) - before >= 120,
            "delay {} too small",
            m.now(0) - before
        );
        assert_eq!(m.stats().cpus[0].nacks, 1);
        assert_eq!(m.chaos_stats().injected_nacks, 1);
        // Plain accesses are never nacked (callers do not expect it).
        let mut m2 = Machine::new(MachineConfig::small(2).with_fault_plan(plan));
        m2.store(0, word(0), 5).unwrap();
        assert_eq!(m2.chaos_stats().injected_nacks, 0);
    }

    #[test]
    fn ufo_set_retry_charges_bounded_delay() {
        let mut plan = FaultPlan::quiet(11);
        plan.ufo_set_failure = 1.0;
        plan.ufo_retry_cycles = 500;
        let mut chaotic = Machine::new(MachineConfig::small(1).with_fault_plan(plan));
        let mut baseline = Machine::new(MachineConfig::small(1));
        chaotic
            .set_ufo_bits(0, word(0), crate::UfoBits::FAULT_ON_WRITE)
            .unwrap();
        baseline
            .set_ufo_bits(0, word(0), crate::UfoBits::FAULT_ON_WRITE)
            .unwrap();
        let delta = chaotic.now(0) - baseline.now(0);
        assert!(
            (500..=1500).contains(&delta),
            "delta {delta} outside 1–3 rounds"
        );
        assert_eq!(chaotic.chaos_stats().ufo_set_retries, 1);
        // The set still took effect.
        assert_eq!(
            chaotic.peek_ufo(word(0).line()),
            crate::UfoBits::FAULT_ON_WRITE
        );
    }

    #[test]
    fn swap_thrash_forces_refault() {
        let mut plan = FaultPlan::quiet(13);
        plan.swap_thrash = 1.0;
        let mut cfg = MachineConfig::small(1).with_fault_plan(plan);
        cfg.memory_words = 1 << 16;
        let mut m = Machine::new(cfg);
        m.enable_swap(SwapConfig {
            max_resident_pages: 4,
        });
        m.load(0, Addr(0)).unwrap(); // cold fault-in (no thrash roll)
        assert_eq!(m.swap_stats().page_ins, 1);
        // The next touch thrashes: page out + re-fault, transparently.
        m.load(0, Addr(8)).unwrap();
        assert_eq!(m.swap_stats().page_outs, 1);
        assert_eq!(m.swap_stats().page_ins, 2);
        assert_eq!(m.chaos_stats().swap_thrashes, 1);
        // Inside a transaction the re-fault surfaces as a PageFault abort.
        m.btm_begin(0).unwrap();
        m.work(0, 1).unwrap();
        let err = m.load(0, Addr(PAGE_BYTES / 2)).unwrap_err();
        match err {
            AccessError::TxnAbort(info) => assert_eq!(info.reason, AbortReason::PageFault),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        let run = |seed: u64| {
            let plan = FaultPlan::mixed(seed);
            let mut m = Machine::new(MachineConfig::small(2).with_fault_plan(plan));
            for round in 0..40u64 {
                for cpu in 0..2 {
                    if m.btm_begin(cpu).is_ok() {
                        let a = word((round % 8) * 8);
                        let _ = m.load(cpu, a).and_then(|v| m.store(cpu, a, v + 1));
                        if m.in_txn(cpu) {
                            let _ = m.btm_end(cpu);
                        }
                    }
                }
            }
            (m.now(0), m.now(1), m.chaos_stats(), m.drain_chaos_events())
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        let (_, _, s1, _) = run(42);
        let (_, _, s2, _) = run(43);
        // Not a hard guarantee, but with these rates over 80 txns two seeds
        // colliding on every counter would indicate a broken RNG hookup.
        assert!(s1.total() > 0, "mixed plan injected nothing");
        let _ = s2;
    }

    #[test]
    fn preset_plans_have_expected_shape() {
        let q = FaultPlan::quiet(0);
        for k in ChaosFaultKind::all() {
            assert_eq!(q.rate(k), 0.0, "{k} rate nonzero in quiet plan");
        }
        assert!(FaultPlan::mixed(0).rate(ChaosFaultKind::SpuriousAbort) > 0.0);
        assert!(FaultPlan::abort_storm(0).spurious_abort > FaultPlan::mixed(0).spurious_abort);
        assert!(FaultPlan::nack_storm(0).coherence_nack > FaultPlan::mixed(0).coherence_nack);
    }

    #[test]
    fn preset_plans_validate() {
        for plan in [
            FaultPlan::quiet(1),
            FaultPlan::mixed(1),
            FaultPlan::abort_storm(1),
            FaultPlan::nack_storm(1),
        ] {
            plan.validate();
        }
    }

    #[test]
    #[should_panic(expected = "spurious-abort rate must be a probability")]
    fn nan_rate_is_rejected_at_construction() {
        let mut plan = FaultPlan::quiet(1);
        plan.spurious_abort = f64::NAN;
        let _ = Machine::new(MachineConfig::small(1).with_fault_plan(plan));
    }

    #[test]
    #[should_panic(expected = "coherence-nack rate must be a probability")]
    fn out_of_range_rate_is_rejected_at_construction() {
        let mut plan = FaultPlan::quiet(1);
        plan.coherence_nack = 1.5;
        let _ = Machine::new(MachineConfig::small(1).with_fault_plan(plan));
    }

    #[test]
    #[should_panic(expected = "power-fail rate must be a probability")]
    fn negative_rate_is_rejected_by_machine_new() {
        // A literal-built config bypasses with_fault_plan; Machine::new is
        // the backstop.
        let mut plan = FaultPlan::quiet(1);
        plan.power_fail = -0.25;
        let mut cfg = MachineConfig::small(1);
        cfg.fault_plan = Some(plan);
        let _ = Machine::new(cfg);
    }
}
