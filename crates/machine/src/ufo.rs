//! UFO: user-mode fine-grained memory protection bits.
//!
//! Each 64-byte line carries two *user fault-on* bits — fault-on-read and
//! fault-on-write — that travel with the data through the whole hierarchy
//! (paper §3.2 and Appendix A). The bits themselves are stored in the
//! coherence directory in this model; this module defines their
//! representation and fault classification.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// The two per-line user fault-on bits.
///
/// `UfoBits` is a tiny flag set: combine with `|`, test with
/// [`UfoBits::contains`].
///
/// ```
/// use ufotm_machine::UfoBits;
/// let bits = UfoBits::FAULT_ON_READ | UfoBits::FAULT_ON_WRITE;
/// assert!(bits.contains(UfoBits::FAULT_ON_WRITE));
/// assert!(!UfoBits::NONE.faults_on(false));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UfoBits(u8);

impl UfoBits {
    /// No protection.
    pub const NONE: UfoBits = UfoBits(0);
    /// Raise a fault when the line is read (by a UFO-enabled thread).
    pub const FAULT_ON_READ: UfoBits = UfoBits(0b01);
    /// Raise a fault when the line is written (by a UFO-enabled thread).
    pub const FAULT_ON_WRITE: UfoBits = UfoBits(0b10);
    /// Both bits set — how a USTM write barrier protects a line.
    pub const FAULT_ON_BOTH: UfoBits = UfoBits(0b11);

    /// Whether every bit in `other` is also set in `self`.
    #[must_use]
    pub const fn contains(self, other: UfoBits) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no bits are set.
    #[must_use]
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether an access of the given kind faults under this protection.
    #[must_use]
    pub const fn faults_on(self, is_write: bool) -> bool {
        if is_write {
            self.0 & Self::FAULT_ON_WRITE.0 != 0
        } else {
            self.0 & Self::FAULT_ON_READ.0 != 0
        }
    }

    /// The raw two-bit encoding (bit 0 = fault-on-read, bit 1 =
    /// fault-on-write), as a `read_ufo_bits` instruction would return it.
    #[must_use]
    pub const fn to_raw(self) -> u8 {
        self.0
    }

    /// Decodes a raw two-bit encoding; higher bits are ignored.
    #[must_use]
    pub const fn from_raw(raw: u8) -> Self {
        UfoBits(raw & 0b11)
    }
}

impl BitOr for UfoBits {
    type Output = UfoBits;
    fn bitor(self, rhs: UfoBits) -> UfoBits {
        UfoBits(self.0 | rhs.0)
    }
}

impl BitOrAssign for UfoBits {
    fn bitor_assign(&mut self, rhs: UfoBits) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for UfoBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (
            self.contains(Self::FAULT_ON_READ),
            self.contains(Self::FAULT_ON_WRITE),
        ) {
            (false, false) => write!(f, "UfoBits(none)"),
            (true, false) => write!(f, "UfoBits(for)"),
            (false, true) => write!(f, "UfoBits(fow)"),
            (true, true) => write!(f, "UfoBits(for|fow)"),
        }
    }
}

/// What kind of access raised a UFO fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UfoFaultKind {
    /// A load hit a line with fault-on-read set.
    Read,
    /// A store hit a line with fault-on-write set.
    Write,
}

impl UfoFaultKind {
    /// `true` for [`UfoFaultKind::Write`].
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, UfoFaultKind::Write)
    }
}

impl fmt::Display for UfoFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UfoFaultKind::Read => f.write_str("read"),
            UfoFaultKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_algebra() {
        let b = UfoBits::FAULT_ON_READ | UfoBits::FAULT_ON_WRITE;
        assert_eq!(b, UfoBits::FAULT_ON_BOTH);
        assert!(b.contains(UfoBits::FAULT_ON_READ));
        assert!(UfoBits::NONE.is_none());
        assert!(!UfoBits::FAULT_ON_READ.is_none());
    }

    #[test]
    fn fault_classification() {
        assert!(UfoBits::FAULT_ON_WRITE.faults_on(true));
        assert!(!UfoBits::FAULT_ON_WRITE.faults_on(false));
        assert!(UfoBits::FAULT_ON_READ.faults_on(false));
        assert!(UfoBits::FAULT_ON_BOTH.faults_on(true));
    }

    #[test]
    fn raw_round_trip() {
        for raw in 0..4u8 {
            assert_eq!(UfoBits::from_raw(raw).to_raw(), raw);
        }
        assert_eq!(UfoBits::from_raw(0b111).to_raw(), 0b11);
    }

    #[test]
    fn debug_is_informative() {
        assert_eq!(format!("{:?}", UfoBits::FAULT_ON_BOTH), "UfoBits(for|fow)");
        assert_eq!(format!("{:?}", UfoBits::NONE), "UfoBits(none)");
    }
}
