//! Regenerates Table 4: the simulated-system parameters.

use ufotm_bench::{header, ArtifactWriter};
use ufotm_machine::MachineConfig;

fn main() {
    header("Table 4 — simulation parameters (modelled equivalents)");
    let cfg = MachineConfig::table4(16);
    let c = &cfg.costs;
    println!("{:<34} {}", "CPUs (max modelled)", 64);
    println!(
        "{:<34} {} sets x {} ways x 64 B = {} KiB",
        "L1 data cache",
        cfg.l1.sets(),
        cfg.l1.ways(),
        cfg.l1.capacity_bytes() / 1024
    );
    println!(
        "{:<34} {} sets x {} ways x 64 B = {} KiB",
        "L2 unified cache",
        cfg.l2.sets(),
        cfg.l2.ways(),
        cfg.l2.capacity_bytes() / 1024
    );
    println!("{:<34} {} B", "cache line size", 64);
    println!(
        "{:<34} {} MiB",
        "physical memory",
        cfg.memory_words * 8 / (1 << 20)
    );
    println!(
        "{:<34} directory (MESI-like, owner+sharers)",
        "coherence protocol"
    );
    println!(
        "{:<34} 16384 bins x 16 B (standard layout)",
        "USTM otable size"
    );
    println!();
    println!("latencies (cycles):");
    println!("  {:<32} {}", "L1 hit", c.l1_hit);
    println!("  {:<32} {}", "L2 hit (fill)", c.l2_hit);
    println!("  {:<32} {}", "memory (fill)", c.mem);
    println!("  {:<32} {}", "cache-to-cache transfer", c.cache_to_cache);
    println!("  {:<32} {}", "dirty writeback", c.writeback);
    println!("  {:<32} {}", "nack retry (paper: 20)", c.nack_retry);
    println!("  {:<32} {}", "btm_begin / btm_end", c.btm_begin);
    println!("  {:<32} {}", "btm abort handling", c.btm_abort);
    println!("  {:<32} {}", "UFO bit instruction", c.ufo_op);
    println!("  {:<32} {}", "fault dispatch", c.fault_dispatch);
    println!(
        "  {:<32} {}",
        "timer interrupt service", c.interrupt_service
    );
    println!("  {:<32} {:?}", "timer quantum (cycles)", cfg.timer_quantum);
    println!(
        "  {:<32} {} / {}",
        "page in / page out", c.page_in, c.page_out
    );
    // This target prints static parameters — the artifact exists (empty)
    // so every bench uniformly emits BENCH_<name>.json.
    ArtifactWriter::new("table4").finish();
}
