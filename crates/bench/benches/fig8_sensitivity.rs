//! Regenerates Figure 8: sensitivity of the UFO hybrid to contention-
//! management policy choices, on the high-contention workloads.
//!
//! Bars (as in the paper):
//! 1. requester-wins hardware CM (+ failover after 5 contention aborts,
//!    which such policies need to avoid livelock),
//! 2. age-ordered CM but failing over on the 5th contention abort,
//! 3. as (2) but hardware transactions stall instead of aborting on UFO
//!    faults,
//! 4. limit study: UFO-bit sets only kill true conflicts,
//!
//! all against the paper's recommended baseline (age CM, never fail over
//! on contention, abort-and-retry on UFO faults).

use ufotm_bench::{header, quick, slug, speedup, ArtifactWriter};
use ufotm_core::{HybridPolicy, SystemKind};
use ufotm_machine::{HwCmPolicy, UfoKillPolicy};
use ufotm_stamp::harness::{RunOutcome, RunSpec};
use ufotm_stamp::{genome, kmeans};

struct Config {
    name: &'static str,
    policy: HybridPolicy,
    hw_cm: HwCmPolicy,
    ufo_kill: UfoKillPolicy,
    owner_state_sets: bool,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            name: "baseline (age CM, no contention failover)",
            policy: HybridPolicy::default(),
            hw_cm: HwCmPolicy::AgeOrdered,
            ufo_kill: UfoKillPolicy::AllSpeculativeHolders,
            owner_state_sets: false,
        },
        Config {
            name: "1: requester-wins HW CM (+failover@5)",
            policy: HybridPolicy::failover_on_nth_conflict(5),
            hw_cm: HwCmPolicy::RequesterWins,
            ufo_kill: UfoKillPolicy::AllSpeculativeHolders,
            owner_state_sets: false,
        },
        Config {
            name: "2: failover on 5th contention abort",
            policy: HybridPolicy::failover_on_nth_conflict(5),
            hw_cm: HwCmPolicy::AgeOrdered,
            ufo_kill: UfoKillPolicy::AllSpeculativeHolders,
            owner_state_sets: false,
        },
        Config {
            name: "3: (2) + stall on UFO faults",
            policy: {
                let mut p = HybridPolicy::failover_on_nth_conflict(5);
                p.btm_ufo_fault = ufotm_core::BtmUfoFaultPolicy::Stall;
                p
            },
            hw_cm: HwCmPolicy::AgeOrdered,
            ufo_kill: UfoKillPolicy::AllSpeculativeHolders,
            owner_state_sets: false,
        },
        Config {
            name: "4: limit study, true-conflict UFO kills only",
            policy: HybridPolicy::default(),
            hw_cm: HwCmPolicy::AgeOrdered,
            ufo_kill: UfoKillPolicy::TrueConflictsOnly,
            owner_state_sets: false,
        },
        Config {
            name: "5: owner-state UFO sets (the paper's proposed fix)",
            policy: HybridPolicy::default(),
            hw_cm: HwCmPolicy::AgeOrdered,
            ufo_kill: UfoKillPolicy::AllSpeculativeHolders,
            owner_state_sets: true,
        },
    ]
}

fn run_with(
    cfgs: &[Config],
    threads: usize,
    workload: &str,
    art: &mut ArtifactWriter,
    f: &dyn Fn(&RunSpec) -> RunOutcome,
) {
    let mut baseline = 0u64;
    for (i, c) in cfgs.iter().enumerate() {
        let mut spec = RunSpec::new(SystemKind::UfoHybrid, threads);
        spec.policy = c.policy;
        spec.machine.hw_cm = c.hw_cm;
        spec.machine.ufo_kill_policy = c.ufo_kill;
        spec.machine.ufo_owner_state_sets = c.owner_state_sets;
        let out = f(&spec);
        art.push(format!("{}/config-{i}/{threads}T", slug(workload)), &out);
        if i == 0 {
            baseline = out.makespan;
        }
        println!(
            "  {:<46} makespan={:>12}  rel. perf={:>6.2}x  sw={:>5} aborts={:>6}",
            c.name,
            out.makespan,
            speedup(baseline, out.makespan),
            out.sw_commits,
            out.total_aborts()
        );
    }
}

fn main() {
    header("Figure 8 — contention-management sensitivity (UFO hybrid)");
    let threads = if quick() { 4 } else { 8 };
    let scale = |n: usize| if quick() { n / 3 } else { n };
    let cfgs = configs();
    let mut art = ArtifactWriter::new("fig8_sensitivity");

    println!();
    println!("[genome]");
    let gen = genome::GenomeParams {
        segments: scale(384),
        ..genome::GenomeParams::standard()
    };
    run_with(&cfgs, threads, "genome", &mut art, &|s| {
        genome::run(s, &gen)
    });

    println!();
    println!("[kmeans high contention]");
    let km = kmeans::KmeansParams {
        points: scale(768),
        ..kmeans::KmeansParams::high_contention()
    };
    run_with(&cfgs, threads, "kmeans high contention", &mut art, &|s| {
        kmeans::run(s, &km)
    });
    art.finish();
}
