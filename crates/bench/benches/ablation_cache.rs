//! Ablation: transactional-cache capacity vs. hybrid performance.
//!
//! The paper (§5.2) notes that vacation-low's hybrid/unbounded gap is
//! "largely due to the set overflows; when the transactional cache is made
//! sufficiently large to hold all of vacation low contention's
//! transactions, the hybrids perform (relative to the unbounded HTM) almost
//! exactly as they do for vacation high contention." This bench sweeps the
//! L1 size and shows overflow failovers vanishing and the UFO hybrid
//! closing on the unbounded HTM.

use ufotm_bench::{header, quick, speedup, ArtifactWriter};
use ufotm_core::SystemKind;
use ufotm_machine::{AbortReason, CacheGeometry};
use ufotm_stamp::harness::RunSpec;
use ufotm_stamp::vacation::{self, VacationParams};

fn main() {
    header("Ablation — L1 capacity vs. vacation-low hybrid performance");
    let threads = if quick() { 2 } else { 4 };
    let mut params = VacationParams::low_contention();
    if quick() {
        params.total_tasks /= 3;
    }
    let l1s = [
        ("8 KiB (32 sets x 4)", CacheGeometry::new(32, 4)),
        ("32 KiB (128 sets x 4, paper)", CacheGeometry::new(128, 4)),
        ("128 KiB (512 sets x 4)", CacheGeometry::new(512, 4)),
        ("512 KiB (1024 sets x 8)", CacheGeometry::new(1024, 8)),
    ];

    println!();
    println!(
        "{:<30} {:>14} {:>14} {:>10} {:>10}",
        "L1 size", "unbounded(cyc)", "ufo-hyb(cyc)", "rel.perf", "overflows"
    );
    let mut art = ArtifactWriter::new("ablation_cache");
    for (name, geo) in l1s {
        let mut su = RunSpec::new(SystemKind::UnboundedHtm, threads);
        su.machine.l1 = geo;
        let unbounded = vacation::run(&su, &params);
        let mut sh = RunSpec::new(SystemKind::UfoHybrid, threads);
        sh.machine.l1 = geo;
        let hybrid = vacation::run(&sh, &params);
        let kib = geo.capacity_bytes() / 1024;
        art.push(
            format!("vacation-low/unbounded-htm/l1-{kib}KiB"),
            &unbounded,
        );
        art.push(format!("vacation-low/ufo-hybrid/l1-{kib}KiB"), &hybrid);
        println!(
            "{:<30} {:>14} {:>14} {:>9.2}x {:>10}",
            name,
            unbounded.makespan,
            hybrid.makespan,
            speedup(unbounded.makespan, hybrid.makespan),
            hybrid.aborts_for(AbortReason::Overflow),
        );
    }
    println!();
    println!("Expected shape: overflows collapse as the cache grows, and the");
    println!("UFO hybrid converges on the unbounded HTM (rel.perf → ~1.0).");
    art.finish();
}
