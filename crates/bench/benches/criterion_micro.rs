//! Wall-time microbenchmarks of the substrate itself: otable operations,
//! the allocator, the cache model, and end-to-end simulator throughput.
//! These measure the *host* cost of the simulation, not simulated cycles.
//!
//! Dependency-free harness: each benchmark body is timed over a fixed
//! iteration count (shrunk under `UFOTM_BENCH_QUICK=1`) and reported as
//! ns/iter. Numbers are indicative, not statistically rigorous.

use std::time::Instant;

use ufotm_bench::{header, quick, ArtifactWriter};
use ufotm_core::{SystemKind, TmShared, TmThread};
use ufotm_machine::{Addr, LineAddr, Machine, MachineConfig, SimAlloc};
use ufotm_sim::{Ctx, HandoffMode, Sim, ThreadFn};
use ufotm_ustm::{Otable, Perm};

/// Times `iters` runs of `body` and prints ns/iter.
fn bench(name: &str, iters: u64, mut body: impl FnMut()) {
    // One warm-up pass so cold caches/allocations don't dominate.
    body();
    let start = Instant::now();
    for _ in 0..iters {
        body();
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() / u128::from(iters.max(1));
    println!("{name:<34} {per_iter:>10} ns/iter  ({iters} iters)");
}

fn scale(iters: u64) -> u64 {
    if quick() {
        (iters / 20).max(1)
    } else {
        iters
    }
}

fn bench_otable() {
    let mut t = Otable::new(Addr(0x1000), 4096);
    let mut i = 0u64;
    bench("otable_insert_lookup_release", scale(100_000), || {
        let line = LineAddr(i % 10_000);
        i += 1;
        if t.lookup(line).is_none() {
            t.insert(line, Perm::Read, 0);
            std::hint::black_box(t.lookup(line));
            t.release(line, 0);
        }
    });
}

fn bench_alloc() {
    let mut a = SimAlloc::new(Addr::from_word_index(0), 1 << 20);
    bench("sim_alloc_roundtrip", scale(100_000), || {
        let x = a.alloc_line_aligned(8).expect("alloc");
        std::hint::black_box(x);
        a.free(x).expect("free");
    });
}

fn bench_machine_access() {
    let mut m = Machine::new(MachineConfig::table4(1));
    let a = Addr::from_word_index(100);
    m.store(0, a, 1).expect("warm");
    bench("machine_plain_load_hit", scale(200_000), || {
        std::hint::black_box(m.load(0, a).expect("hit"));
    });
    let mut m = Machine::new(MachineConfig::table4(1));
    bench("machine_btm_txn_commit", scale(100_000), || {
        m.btm_begin(0).expect("begin");
        m.store(0, a, 2).expect("spec store");
        m.btm_end(0).expect("commit");
    });
}

fn bench_engine_handoff() {
    // Raw scheduler cost in isolation: threads ping-pong one cache line at
    // quantum 0, so every single operation transfers the line and the
    // designation. Broadcast is the legacy notify_all engine, kept in-tree
    // as the comparison baseline (see perf_wallclock for the gated ratio).
    for (name, mode) in [
        ("engine_handoff_4cpu_targeted", HandoffMode::Targeted),
        ("engine_handoff_4cpu_broadcast", HandoffMode::Broadcast),
    ] {
        const OPS: u64 = 1_000;
        bench(name, scale(40), || {
            let machine = Machine::new(MachineConfig::small(4));
            let bodies: Vec<ThreadFn<()>> = (0..4)
                .map(|cpu| -> ThreadFn<()> {
                    Box::new(move |ctx: &mut Ctx<()>| {
                        let line = Addr::from_word_index(0);
                        for i in 0..OPS {
                            ctx.store(line, cpu as u64 * OPS + i).expect("plain store");
                        }
                    })
                })
                .collect();
            let r = Sim::new(machine, ()).handoff_mode(mode).run(bodies);
            std::hint::black_box(r.makespan);
        });
    }
}

fn bench_end_to_end() {
    bench("sim_1k_hybrid_txns_2cpu", scale(20), || {
        let cfg = MachineConfig::table4(2);
        let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
        let machine = Machine::new(cfg);
        let bodies: Vec<ThreadFn<TmShared>> = (0..2)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                    t.install(ctx);
                    for i in 0..500u64 {
                        let addr = Addr(4096 + ((cpu as u64 * 1000 + i * 64) % 65536));
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, addr)?;
                            tx.write(ctx, addr, v + 1)
                        });
                    }
                })
            })
            .collect();
        let r = Sim::new(machine, shared).run(bodies);
        std::hint::black_box(r.makespan);
    });
}

fn main() {
    header("Substrate wall-time microbenchmarks (host ns, not simulated cycles)");
    bench_otable();
    bench_alloc();
    bench_machine_access();
    bench_engine_handoff();
    bench_end_to_end();
    // Host-time measurements are nondeterministic by nature, so they stay
    // out of the artifact; the (empty) file keeps the per-bench contract.
    ArtifactWriter::new("criterion_micro").finish();
}
