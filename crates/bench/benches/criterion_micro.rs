//! Wall-time microbenchmarks of the substrate itself (criterion): otable
//! operations, the allocator, the cache model, and end-to-end simulator
//! throughput. These measure the *host* cost of the simulation, not
//! simulated cycles.

use criterion::{criterion_group, criterion_main, Criterion};

use ufotm_core::{SystemKind, TmShared, TmThread};
use ufotm_machine::{Addr, LineAddr, Machine, MachineConfig, SimAlloc};
use ufotm_sim::{Ctx, Sim, ThreadFn};
use ufotm_ustm::{Otable, Perm};

fn bench_otable(c: &mut Criterion) {
    c.bench_function("otable_insert_lookup_release", |b| {
        let mut t = Otable::new(Addr(0x1000), 4096);
        let mut i = 0u64;
        b.iter(|| {
            let line = LineAddr(i % 10_000);
            i += 1;
            if t.lookup(line).is_none() {
                t.insert(line, Perm::Read, 0);
                std::hint::black_box(t.lookup(line));
                t.release(line, 0);
            }
        });
    });
}

fn bench_alloc(c: &mut Criterion) {
    c.bench_function("sim_alloc_roundtrip", |b| {
        let mut a = SimAlloc::new(Addr::from_word_index(0), 1 << 20);
        b.iter(|| {
            let x = a.alloc_line_aligned(8).expect("alloc");
            std::hint::black_box(x);
            a.free(x).expect("free");
        });
    });
}

fn bench_machine_access(c: &mut Criterion) {
    c.bench_function("machine_plain_load_hit", |b| {
        let mut m = Machine::new(MachineConfig::table4(1));
        let a = Addr::from_word_index(100);
        m.store(0, a, 1).expect("warm");
        b.iter(|| std::hint::black_box(m.load(0, a).expect("hit")));
    });
    c.bench_function("machine_btm_txn_commit", |b| {
        let mut m = Machine::new(MachineConfig::table4(1));
        let a = Addr::from_word_index(100);
        b.iter(|| {
            m.btm_begin(0).expect("begin");
            m.store(0, a, 2).expect("spec store");
            m.btm_end(0).expect("commit");
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("sim_1k_hybrid_txns_2cpu", |b| {
        b.iter(|| {
            let cfg = MachineConfig::table4(2);
            let shared = TmShared::standard(SystemKind::UfoHybrid, &cfg);
            let machine = Machine::new(cfg);
            let bodies: Vec<ThreadFn<TmShared>> = (0..2)
                .map(|cpu| -> ThreadFn<TmShared> {
                    Box::new(move |ctx: &mut Ctx<TmShared>| {
                        let mut t = TmThread::new(SystemKind::UfoHybrid, cpu);
                        t.install(ctx);
                        for i in 0..500u64 {
                            let addr = Addr(4096 + ((cpu as u64 * 1000 + i * 64) % 65536));
                            t.transaction(ctx, |tx, ctx| {
                                let v = tx.read(ctx, addr)?;
                                tx.write(ctx, addr, v + 1)
                            });
                        }
                    })
                })
                .collect();
            let r = Sim::new(machine, shared).run(bodies);
            std::hint::black_box(r.makespan);
        });
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_otable, bench_alloc, bench_machine_access, bench_end_to_end
}
criterion_main!(micro);
