//! Host wall-clock performance of the simulator (not simulated cycles).
//!
//! Two measurements, both recorded in `BENCH_perf_wallclock.json`:
//!
//! 1. **Raw handoff throughput** — 8 threads ping-ponging one cache line at
//!    quantum 0, so every operation is a scheduler handoff. Run under both
//!    [`HandoffMode::Targeted`] (the production fast path) and
//!    [`HandoffMode::Broadcast`] (the legacy `notify_all` engine); the
//!    speedup ratio is asserted ≥ 2×.
//! 2. **End-to-end ns/simulated-cycle** — the failover microbenchmark on
//!    the UFO hybrid, host nanoseconds divided by the simulated makespan.
//!    If `$UFOTM_PERF_BASELINE` names a baseline file (the committed
//!    `crates/bench/perf_baseline.json`), the bench fails when the measured
//!    value regresses more than 3× over it — generous on purpose, to absorb
//!    runner noise while still catching order-of-magnitude regressions.

use ufotm_bench::{header, quick, ArtifactWriter, HostMetrics};
use ufotm_core::SystemKind;
use ufotm_machine::{Addr, Machine, MachineConfig};
use ufotm_sim::{Ctx, HandoffMode, Sim, ThreadFn};
use ufotm_stamp::harness::RunSpec;
use ufotm_stamp::micro::{self, MicroParams};

const HANDOFF_CPUS: usize = 8;

/// One cache line, `HANDOFF_CPUS` threads storing to it in lockstep at
/// quantum 0: every operation transfers the line *and* the designation.
fn handoff_run(mode: HandoffMode, ops: u64) -> HostMetrics {
    let machine = Machine::new(MachineConfig::small(HANDOFF_CPUS));
    let bodies: Vec<ThreadFn<()>> = (0..HANDOFF_CPUS)
        .map(|cpu| -> ThreadFn<()> {
            Box::new(move |ctx: &mut Ctx<()>| {
                let line = Addr::from_word_index(0);
                for i in 0..ops {
                    ctx.store(line, cpu as u64 * ops + i).expect("plain store");
                }
            })
        })
        .collect();
    let (host, ()) = HostMetrics::measure(|| {
        let r = Sim::new(machine, ()).handoff_mode(mode).run(bodies);
        (r.makespan, ())
    });
    host
}

/// Enforces the committed-baseline regression gate when armed.
fn check_baseline(measured: f64) {
    let Ok(path) = std::env::var("UFOTM_PERF_BASELINE") else {
        println!("(UFOTM_PERF_BASELINE unset: regression gate skipped)");
        return;
    };
    let path = ufotm_bench::resolve_baseline_path(&path);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading perf baseline {}: {e}", path.display()));
    let baseline = ufotm_bench::parse_json_number(&text, "ns_per_cycle")
        .unwrap_or_else(|| panic!("no ns_per_cycle in {}", path.display()));
    let limit = baseline * 3.0;
    println!(
        "regression gate: measured {measured:.3} ns/cycle vs baseline {baseline:.3} (limit {limit:.3})"
    );
    assert!(
        measured <= limit,
        "host performance regression: {measured:.3} ns/simulated-cycle exceeds \
         3x the committed baseline of {baseline:.3} (see crates/bench/perf_baseline.json)"
    );
}

fn main() {
    header("Host wall-clock performance (ns are host time, not simulated)");
    let mut art = ArtifactWriter::new("perf_wallclock");

    // 1. Raw handoff throughput, targeted vs broadcast.
    let ops: u64 = if quick() { 5_000 } else { 40_000 };
    let total_ops = ops * HANDOFF_CPUS as u64;
    let targeted = handoff_run(HandoffMode::Targeted, ops);
    let broadcast = handoff_run(HandoffMode::Broadcast, ops);
    assert_eq!(
        targeted.sim_cycles, broadcast.sim_cycles,
        "modes must simulate identically"
    );
    let tput = |h: &HostMetrics| total_ops as f64 * 1e9 / h.ns.max(1) as f64;
    println!(
        "handoff/8cpu  targeted  {:>12.0} ops/s  ({} ops in {} ms)",
        tput(&targeted),
        total_ops,
        targeted.ns / 1_000_000
    );
    println!(
        "handoff/8cpu  broadcast {:>12.0} ops/s  ({} ops in {} ms)",
        tput(&broadcast),
        total_ops,
        broadcast.ns / 1_000_000
    );
    let speedup = broadcast.ns as f64 / targeted.ns.max(1) as f64;
    println!("handoff speedup (targeted over broadcast): {speedup:.2}x");
    art.push_host("handoff/8cpu/targeted", targeted);
    art.push_host("handoff/8cpu/broadcast", broadcast);
    art.metric("handoff_speedup_8cpu", speedup);

    // 2. End-to-end ns per simulated cycle on a representative hybrid run.
    // Deliberately not shrunk under quick mode: the run takes ~10 ms and a
    // shorter one would let setup cost dominate the ns/cycle ratio, making
    // the regression gate noisy.
    let params = MicroParams::with_rate(0.1);
    let spec = RunSpec::new(SystemKind::UfoHybrid, 4);
    let (host, outcome) = HostMetrics::measure(|| {
        let o = micro::run(&spec, &params);
        (o.makespan, o)
    });
    println!(
        "micro/ufo-hybrid/4T: {} sim cycles in {} us -> {:.3} ns/cycle",
        host.sim_cycles,
        host.ns / 1_000,
        host.ns_per_cycle()
    );
    art.metric("ns_per_sim_cycle", host.ns_per_cycle());
    art.push_with_host("micro/ufo-hybrid/4T", &outcome, host);

    art.finish();

    check_baseline(host.ns_per_cycle());
    assert!(
        speedup >= 2.0,
        "targeted handoff must be at least 2x the broadcast engine at \
         {HANDOFF_CPUS} CPUs, measured {speedup:.2}x"
    );
}
