//! Regenerates Figure 6: why hardware transactions aborted, for each hybrid
//! (and the unbounded HTM for reference) on each workload.

use ufotm_bench::{header, print_abort_breakdown, quick, slug, spec, ArtifactWriter};
use ufotm_core::SystemKind;
use ufotm_stamp::harness::{RunOutcome, RunSpec};
use ufotm_stamp::{genome, kmeans, vacation};

fn main() {
    header("Figure 6 — reasons hardware transactions aborted");
    let threads = if quick() { 4 } else { 8 };
    let scale = |n: usize| if quick() { n / 3 } else { n };
    let systems = [
        SystemKind::UnboundedHtm,
        SystemKind::UfoHybrid,
        SystemKind::HyTm,
        SystemKind::PhTm,
    ];
    let mut art = ArtifactWriter::new("fig6_aborts");

    let run_all = |art: &mut ArtifactWriter, name: &str, f: &dyn Fn(&RunSpec) -> RunOutcome| {
        let outs: Vec<RunOutcome> = systems
            .iter()
            .map(|&k| {
                // Trace the run so the report's latency/retry histograms
                // are populated (host-side only; simulated cycles are
                // unchanged).
                let mut s = spec(k, threads);
                s.trace_cap = 1 << 18;
                let out = f(&s);
                out.report.assert_audit_clean();
                art.push(format!("{}/{}/{threads}T", slug(name), k.label()), &out);
                out
            })
            .collect();
        let refs: Vec<&RunOutcome> = outs.iter().collect();
        print_abort_breakdown(name, &refs);
    };

    let km_high = kmeans::KmeansParams {
        points: scale(768),
        ..kmeans::KmeansParams::high_contention()
    };
    run_all(&mut art, "kmeans high contention", &|s| {
        kmeans::run(s, &km_high)
    });
    let km_low = kmeans::KmeansParams {
        points: scale(768),
        ..kmeans::KmeansParams::low_contention()
    };
    run_all(&mut art, "kmeans low contention", &|s| {
        kmeans::run(s, &km_low)
    });
    let vac_high = vacation::VacationParams {
        total_tasks: scale(96),
        ..vacation::VacationParams::high_contention()
    };
    run_all(&mut art, "vacation high contention", &|s| {
        vacation::run(s, &vac_high)
    });
    let vac_low = vacation::VacationParams {
        total_tasks: scale(96),
        ..vacation::VacationParams::low_contention()
    };
    run_all(&mut art, "vacation low contention", &|s| {
        vacation::run(s, &vac_low)
    });
    let gen = genome::GenomeParams {
        segments: scale(384),
        ..genome::GenomeParams::standard()
    };
    run_all(&mut art, "genome", &|s| genome::run(s, &gen));
    art.finish();
}
