//! Regenerates Figure 7: microbenchmark speedup as a function of the
//! software-failover rate (7a = full range, 7b = low-rate zoom with the
//! 0 %-rate overheads of §5.3), plus the measured UFO/HyTM crossover.

use ufotm_bench::{header, quick, spec, speedup, ArtifactWriter, Recap};
use ufotm_core::SystemKind;
use ufotm_stamp::micro::{self, MicroParams};

fn main() {
    header("Figure 7 — speedup vs. software failover rate (microbenchmark)");
    let threads = if quick() { 4 } else { 8 };
    let txns = if quick() { 80 } else { 200 };
    let rates: Vec<f64> = if quick() {
        vec![0.0, 0.25, 1.0]
    } else {
        vec![0.0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.45, 0.60, 0.80, 1.00]
    };
    let systems = [
        SystemKind::UnboundedHtm,
        SystemKind::UfoHybrid,
        SystemKind::HyTm,
        SystemKind::PhTm,
        SystemKind::UstmStrong,
    ];

    let mut art = ArtifactWriter::new("fig7_failover");
    let params_at = |rate: f64| MicroParams {
        txns_per_thread: txns,
        ..MicroParams::with_rate(rate)
    };
    let seq = micro::run(&spec(SystemKind::Sequential, 1), &params_at(0.0));
    art.push("micro/sequential/1T/rate-0", &seq);
    println!(
        "sequential makespan = {} cycles ({} txns)",
        seq.makespan, txns
    );
    println!("(speedup is throughput-normalized: threads x seq / makespan,");
    println!(" since each thread runs its own {txns}-txn stream)");

    // 7a: full sweep.
    println!();
    print!("{:<8}", "rate%");
    for k in systems {
        print!("{:>14}", k.label());
    }
    println!();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for &rate in &rates {
        print!("{:<8.0}", rate * 100.0);
        for (i, &k) in systems.iter().enumerate() {
            let out = micro::run(&spec(k, threads), &params_at(rate));
            art.push(
                format!("micro/{}/{threads}T/rate-{:.0}", k.label(), rate * 100.0),
                &out,
            );
            let s = threads as f64 * speedup(seq.makespan, out.makespan);
            series[i].push(s);
            print!("{s:>14.2}");
        }
        println!();
    }

    // 7b: 0 %-rate overheads relative to the pure HTM (paper §5.3: UFO
    // hybrid ≈ pure HTM; PhTM ~2 % more; HyTM more still).
    println!();
    println!("-- Figure 7b: overhead at 0% failover, relative to pure HTM --");
    let base = micro::run(&spec(SystemKind::UnboundedHtm, threads), &params_at(0.0));
    for &k in &systems {
        let out = micro::run(&spec(k, threads), &params_at(0.0));
        let overhead = out.makespan as f64 / base.makespan as f64 - 1.0;
        println!(
            "  {:<14} makespan={:>10}  overhead={:>6.1}%",
            k.label(),
            out.makespan,
            overhead * 100.0
        );
    }

    // The UFO/HyTM crossover (paper: UFO hybrid's software transactions pay
    // for UFO-bit maintenance, so HyTM overtakes it at high failover rates —
    // the paper measures ≈45 %).
    let mut recap = Recap::new();
    let ufo_idx = systems
        .iter()
        .position(|&k| k == SystemKind::UfoHybrid)
        .unwrap();
    let hytm_idx = systems.iter().position(|&k| k == SystemKind::HyTm).unwrap();
    let crossover = rates
        .iter()
        .zip(series[ufo_idx].iter().zip(series[hytm_idx].iter()))
        .find(|(_, (u, h))| h > u)
        .map(|(r, _)| format!("{:.0}%", r * 100.0))
        .unwrap_or_else(|| "none in sweep".to_string());
    recap.note("UFO/HyTM crossover rate (paper: ~45%)", crossover);
    recap.note(
        "UFO hybrid degradation 0%→100%",
        format!(
            "{:.2}x → {:.2}x",
            series[ufo_idx][0],
            series[ufo_idx][rates.len() - 1]
        ),
    );
    recap.print("Figure 7");
    art.finish();
}
