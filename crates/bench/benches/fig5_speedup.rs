//! Regenerates Figure 5: speedup over sequential execution for every TM
//! system on the five STAMP configurations, across thread counts.

use ufotm_bench::{
    fig5_systems, header, one_line, print_speedup_table, quick, slug, spec, speedup, thread_counts,
    ArtifactWriter,
};
use ufotm_core::SystemKind;
use ufotm_stamp::harness::{RunOutcome, RunSpec};
use ufotm_stamp::{genome, kmeans, vacation};

type Runner = Box<dyn Fn(&RunSpec) -> RunOutcome>;

fn workloads() -> Vec<(&'static str, Runner)> {
    let scale = |n: usize| if quick() { n / 3 } else { n };
    let km_high = kmeans::KmeansParams {
        points: scale(768),
        ..kmeans::KmeansParams::high_contention()
    };
    let km_low = kmeans::KmeansParams {
        points: scale(768),
        ..kmeans::KmeansParams::low_contention()
    };
    let vac_high = vacation::VacationParams {
        total_tasks: scale(96),
        ..vacation::VacationParams::high_contention()
    };
    let vac_low = vacation::VacationParams {
        total_tasks: scale(96),
        ..vacation::VacationParams::low_contention()
    };
    let gen = genome::GenomeParams {
        segments: scale(384),
        ..genome::GenomeParams::standard()
    };
    vec![
        (
            "kmeans high contention",
            Box::new(move |s: &RunSpec| kmeans::run(s, &km_high)) as Runner,
        ),
        (
            "kmeans low contention",
            Box::new(move |s: &RunSpec| kmeans::run(s, &km_low)),
        ),
        (
            "vacation high contention",
            Box::new(move |s: &RunSpec| vacation::run(s, &vac_high)),
        ),
        (
            "vacation low contention",
            Box::new(move |s: &RunSpec| vacation::run(s, &vac_low)),
        ),
        ("genome", Box::new(move |s: &RunSpec| genome::run(s, &gen))),
    ]
}

fn main() {
    header("Figure 5 — speedup relative to sequential execution");
    let threads = thread_counts();
    let mut art = ArtifactWriter::new("fig5_speedup");
    for (name, run) in workloads() {
        let seq = run(&spec(SystemKind::Sequential, 1));
        art.push(format!("{}/sequential/1T", slug(name)), &seq);
        println!();
        println!("[{name}] sequential makespan = {} cycles", seq.makespan);
        let mut rows = Vec::new();
        let mut details = Vec::new();
        for kind in fig5_systems() {
            let mut speedups = Vec::new();
            for &t in &threads {
                let out = run(&spec(kind, t));
                speedups.push(speedup(seq.makespan, out.makespan));
                details.push(one_line(&out));
                art.push(format!("{}/{}/{t}T", slug(name), kind.label()), &out);
            }
            rows.push((kind, speedups));
        }
        print_speedup_table(name, &threads, &rows);
        println!();
        println!("  details:");
        for d in details {
            println!("    {d}");
        }
    }
    art.finish();
}
