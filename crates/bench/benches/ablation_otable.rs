//! Ablation: ownership-table size vs. aliasing effects.
//!
//! The paper notes that "realistic implementations generally have at least
//! tens of thousands of entries to minimize aliasing" (§4.1) and that
//! HyTM's false conflicts arise when "unrelated STM accesses alias the same
//! otable rows previously read by HTM transactions" (§5). A small table
//! makes both effects visible: USTM transactions conflict on aliased bins
//! (stall polls rise), and HyTM hardware transactions abort more on bins
//! they read transactionally.

use ufotm_bench::{header, quick, ArtifactWriter};
use ufotm_core::{SystemKind, TmSharedLayout};
use ufotm_machine::AbortReason;
use ufotm_stamp::harness::RunSpec;
use ufotm_stamp::vacation::{self, VacationParams};

fn run_with_bins(
    kind: SystemKind,
    threads: usize,
    params: &VacationParams,
    bins: u64,
) -> ufotm_stamp::RunOutcome {
    let mut spec = RunSpec::new(kind, threads);
    // Shrink the otable by rebuilding the layout: the harness consumes the
    // machine config, so we pass the knob through a custom layout check.
    // (TmShared::standard uses 16384 bins; we emulate other sizes by
    // scaling the machine's memory so the standard layout allocates the
    // requested count — simpler: expose the sweep through the layout API.)
    let _ = TmSharedLayout::standard(&spec.machine); // reference layout
    spec.otable_bins_override = Some(bins);
    vacation::run(&spec, params)
}

fn main() {
    header("Ablation — otable size vs. aliasing (vacation, high contention)");
    let threads = if quick() { 2 } else { 4 };
    let mut params = VacationParams::high_contention();
    if quick() {
        params.total_tasks /= 3;
    }
    println!();
    println!(
        "{:<12} {:>14} {:>16} {:>14} {:>16}",
        "otable bins", "chain walks", "USTM makespan", "HyTM bin-kills", "HyTM makespan"
    );
    let mut art = ArtifactWriter::new("ablation_otable");
    for bins in [256u64, 1024, 16 * 1024] {
        let ustm = run_with_bins(SystemKind::UstmStrong, threads, &params, bins);
        let hytm = run_with_bins(SystemKind::HyTm, threads, &params, bins);
        art.push(format!("vacation-high/ustm-strong/bins-{bins}"), &ustm);
        art.push(format!("vacation-high/hytm/bins-{bins}"), &hytm);
        println!(
            "{:<12} {:>14} {:>16} {:>14} {:>16}",
            bins,
            ustm.ustm.chain_walks,
            ustm.makespan,
            hytm.aborts_for(AbortReason::Explicit) + hytm.aborts_for(AbortReason::NonTConflict),
            hytm.makespan,
        );
    }
    println!();
    println!("Expected shape: chain walks (aliasing) shrink as the table grows");
    println!("toward the paper's 'tens of thousands of entries'. The measured");
    println!("makespans also expose the tradeoff this model makes explicit: a");
    println!("larger bin array has a larger cache footprint, so barrier traffic");
    println!("misses more — table sizing balances aliasing against locality.");
    art.finish();
}
