//! Wall-clock throughput of the native host-atomics TL2 backend.
//!
//! Runs the backend-generic kmeans and ssca2 bodies on real OS threads
//! (no simulator) and records operations per second in
//! `BENCH_native_tl2.json`. Unlike the simulated figures these numbers
//! are host-dependent and not byte-deterministic; they exist to answer
//! the question the simulator cannot: what the software TL2 path costs
//! on real contended cache lines. `docs/PERF.md` documents the
//! methodology; the sim-vs-native agreement itself is pinned by the
//! `cross_validate` test suite, not here.

use ufotm_bench::{
    check_native_baseline, header, native_thread_counts, quick, ArtifactWriter, HostMetrics,
};
use ufotm_stamp::harness::{NativeOutcome, RunSpec};
use ufotm_stamp::kmeans::{self, KmeansParams};
use ufotm_stamp::ssca2::{self, Ssca2Params};

fn ops_per_sec(out: &NativeOutcome, host: HostMetrics) -> f64 {
    out.ops as f64 * 1e9 / host.ns.max(1) as f64
}

fn record(
    art: &mut ArtifactWriter,
    label: String,
    run: impl FnOnce(&RunSpec) -> NativeOutcome,
    threads: usize,
) {
    let spec = RunSpec::native(threads);
    // sim_cycles is 0 by definition: no simulator runs here, so the
    // ns-per-cycle field of the host record is meaningless for this bench.
    let (host, out) = HostMetrics::measure(|| (0, run(&spec)));
    let ops_s = ops_per_sec(&out, host);
    println!(
        "  {label:<28} {threads}T  ops={:>8}  commits={:>8}  aborts={:>6}  {:>12.0} ops/s",
        out.ops,
        out.stats.commits,
        out.stats.total_aborts(),
        ops_s,
    );
    art.metric(format!("{label}/{threads}T/ops_per_sec"), ops_s);
    art.push_host(format!("{label}/{threads}T"), host);
}

fn main() {
    header("native TL2: host-atomics ops/sec (no simulator)");
    let mut art = ArtifactWriter::new("native_tl2");

    let (km, sc) = if quick() {
        (
            KmeansParams {
                points: 192,
                dims: 4,
                clusters: 4,
                iterations: 2,
            },
            Ssca2Params {
                nodes: 64,
                edges: 512,
            },
        )
    } else {
        (KmeansParams::high_contention(), Ssca2Params::standard())
    };

    println!();
    for &threads in &native_thread_counts() {
        record(
            &mut art,
            "kmeans-high-contention".to_string(),
            |spec| kmeans::run_native(spec, &km),
            threads,
        );
    }
    println!();
    for &threads in &native_thread_counts() {
        record(
            &mut art,
            "ssca2".to_string(),
            |spec| ssca2::run_native(spec, &sc),
            threads,
        );
    }

    art.finish();
    check_native_baseline(art.metrics());
}
