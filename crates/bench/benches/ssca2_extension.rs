//! Extension workload: ssca2-style graph construction across all systems.
//!
//! Not a paper figure — a sanity extension at the low-contention,
//! tiny-transaction end of the spectrum: every system should scale, the
//! hybrids should commit essentially everything in hardware, and the STMs
//! should show their fixed per-barrier overhead and nothing else.

use ufotm_bench::{
    fig5_systems, header, print_speedup_table, quick, spec, speedup, thread_counts, ArtifactWriter,
};
use ufotm_core::SystemKind;
use ufotm_stamp::ssca2::{self, Ssca2Params};

fn main() {
    header("Extension — ssca2 graph construction (not a paper figure)");
    let params = Ssca2Params {
        nodes: 256,
        edges: if quick() { 384 } else { 1024 },
    };
    let threads = thread_counts();
    let mut art = ArtifactWriter::new("ssca2_extension");
    let seq = ssca2::run(&spec(SystemKind::Sequential, 1), &params);
    art.push("ssca2/sequential/1T", &seq);
    println!(
        "sequential makespan = {} cycles ({} edges)",
        seq.makespan, params.edges
    );
    let mut rows = Vec::new();
    for kind in fig5_systems() {
        let mut speedups = Vec::new();
        for &t in &threads {
            let out = ssca2::run(&spec(kind, t), &params);
            speedups.push(speedup(seq.makespan, out.makespan));
            art.push(format!("ssca2/{}/{t}T", kind.label()), &out);
        }
        rows.push((kind, speedups));
    }
    print_speedup_table("ssca2", &threads, &rows);
    art.finish();
    println!();
    println!("Expected shape: everything scales; hybrids ≈ unbounded HTM; the");
    println!("gap to the STMs is their flat per-barrier overhead.");
}
