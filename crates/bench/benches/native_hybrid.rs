//! Wall-clock throughput of the native hybrid (TL2 fast path + USTM
//! slow path) against TL2-only, on real OS threads.
//!
//! The workload is a transactional counter sweep at two contention
//! levels: `low-contention` spreads increments over 64 cache lines,
//! `high-contention` funnels every thread onto one line. Each
//! transaction yields between its read and its write, so conflict
//! windows open even on small hosts where a microsecond transaction
//! would otherwise never overlap a timeslice — the yield stands in for
//! the paper's "transactions long enough to be preempted" regime.
//!
//! Under high abort rates the TL2-only driver burns its time on
//! optimistic re-execution and backoff, while the hybrid fails over to
//! the USTM slow path, whose blocking age-ordered protocol serializes
//! the hot line without wasted work. The headline cell (4 threads, one
//! line) takes the best of three repetitions per system, logs the
//! `hybrid/tl2` ratio (expected >= 1.0), and hard-fails only below a
//! 0.8 noise-tolerance band; the full sweep and the
//! hybrid's failover/abort counters land in `BENCH_native_hybrid.json`.
//! `docs/PERF.md` documents the methodology; numbers are host-dependent
//! and exempt from byte-determinism.

use ufotm_bench::{
    check_native_baseline, header, native_thread_counts, quick, ArtifactWriter, HostMetrics,
};
use ufotm_core::TmBackend;
use ufotm_machine::Addr;
use ufotm_native::{
    run_hybrid_threads, run_threads, HybridStats, NativeHybrid, NativeHybridPolicy, NativeTl2,
};

/// First counter slot (byte address; slots are line-spaced).
const SLOT_BASE: u64 = 4096;
const HEAP_WORDS: u64 = 1 << 12;
const LOCK_ENTRIES: u64 = 1 << 12;
const ALLOC_BASE_WORD: u64 = 1 << 11;
const OTABLE_BINS: u64 = 1 << 10;

fn slot(i: u64) -> Addr {
    Addr(SLOT_BASE + i * 64)
}

/// One thread's share: `txns` read-modify-write increments spread over
/// `lines` line-spaced slots, yielding mid-transaction so concurrent
/// transactions interleave regardless of host core count.
fn counter_body<B: TmBackend>(b: &mut B, lines: u64, txns: u64) {
    let tid = b.tid() as u64;
    for i in 0..txns {
        let s = slot((tid + i) % lines);
        b.transaction(|tx| {
            let v = tx.read(s)?;
            tx.work(8)?;
            std::thread::yield_now();
            tx.write(s, v + 1)
        });
    }
}

fn check_sum(heap: &NativeTl2, lines: u64, expected: u64) {
    let sum: u64 = (0..lines).map(|i| heap.peek(slot(i))).sum();
    assert_eq!(sum, expected, "increments must not be lost");
}

struct Cell {
    ops_per_sec: f64,
    commits: u64,
    aborts: u64,
    hybrid: HybridStats,
}

fn run_tl2_only(threads: usize, lines: u64, txns: u64) -> Cell {
    let heap = NativeTl2::new(HEAP_WORDS, LOCK_ENTRIES, ALLOC_BASE_WORD);
    let (host, stats) = HostMetrics::measure(|| {
        let (stats, _) = run_threads(&heap, threads, |th| counter_body(th, lines, txns));
        (0, stats)
    });
    let total = threads as u64 * txns;
    check_sum(&heap, lines, total);
    Cell {
        ops_per_sec: total as f64 * 1e9 / host.ns.max(1) as f64,
        commits: stats.commits,
        aborts: stats.total_aborts(),
        hybrid: HybridStats::default(),
    }
}

fn run_hybrid(threads: usize, lines: u64, txns: u64) -> Cell {
    let shared = NativeHybrid::new(
        HEAP_WORDS,
        LOCK_ENTRIES,
        ALLOC_BASE_WORD,
        threads,
        OTABLE_BINS,
        NativeHybridPolicy::default(),
    );
    let (host, stats) = HostMetrics::measure(|| {
        let (stats, _) = run_hybrid_threads(&shared, threads, |th| counter_body(th, lines, txns));
        (0, stats)
    });
    let total = threads as u64 * txns;
    check_sum(shared.tl2(), lines, total);
    Cell {
        ops_per_sec: total as f64 * 1e9 / host.ns.max(1) as f64,
        commits: stats.total_commits(),
        aborts: stats.total_aborts(),
        hybrid: stats,
    }
}

fn record(art: &mut ArtifactWriter, label: &str, threads: usize, system: &str, cell: &Cell) {
    println!(
        "  {label:<16} {threads}T {system:<7} commits={:>7} aborts={:>7} \
         failovers={:>6} slow={:>7}  {:>12.0} ops/s",
        cell.commits,
        cell.aborts,
        cell.hybrid.failovers,
        cell.hybrid.slow.commits,
        cell.ops_per_sec,
    );
    let key = format!("{label}/{threads}T/{system}");
    art.metric(format!("{key}/ops_per_sec"), cell.ops_per_sec);
    if system == "hybrid" {
        art.metric(format!("{key}/failovers"), cell.hybrid.failovers as f64);
        art.metric(
            format!("{key}/slow_commits"),
            cell.hybrid.slow.commits as f64,
        );
        art.metric(
            format!("{key}/fast_aborts"),
            cell.hybrid.fast.total_aborts() as f64,
        );
        art.metric(
            format!("{key}/slow_aborts"),
            cell.hybrid.slow.total_aborts() as f64,
        );
    }
}

fn main() {
    header("native hybrid vs TL2-only: host ops/sec (no simulator)");
    let mut art = ArtifactWriter::new("native_hybrid");

    let txns: u64 = if quick() { 300 } else { 1500 };

    println!();
    for &threads in &native_thread_counts() {
        for (label, lines) in [("low-contention", 64u64), ("high-contention", 1)] {
            let tl2 = run_tl2_only(threads, lines, txns);
            record(&mut art, label, threads, "tl2", &tl2);
            let hy = run_hybrid(threads, lines, txns);
            record(&mut art, label, threads, "hybrid", &hy);
        }
    }

    // The headline cell: 4 threads on one line, run regardless of the
    // sweep cap (intentionally oversubscribed on small hosts — the
    // mid-transaction yields keep the interleaving adversarial either
    // way). The expectation is hybrid >= TL2-only: once abort rates
    // explode, failing over to the blocking slow path beats optimistic
    // re-execution. Single wall-clock measurements on a shared runner
    // are noisy, so each system takes the best of three repetitions and
    // the hard assertion allows a tolerance band; the exact >= 1.0
    // expectation stays a logged metric (and the CI baseline gate
    // catches sustained regressions).
    const HEADLINE_REPS: usize = 3;
    const HEADLINE_MIN_RATIO: f64 = 0.8;
    println!();
    let tl2 = (0..HEADLINE_REPS)
        .map(|_| run_tl2_only(4, 1, txns))
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("at least one repetition");
    record(&mut art, "headline", 4, "tl2", &tl2);
    let hy = (0..HEADLINE_REPS)
        .map(|_| run_hybrid(4, 1, txns))
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("at least one repetition");
    record(&mut art, "headline", 4, "hybrid", &hy);
    assert!(
        hy.hybrid.failovers > 0 && hy.hybrid.slow.commits > 0,
        "the headline cell must actually exercise the slow path \
         (failovers={}, slow commits={})",
        hy.hybrid.failovers,
        hy.hybrid.slow.commits,
    );
    let ratio = hy.ops_per_sec / tl2.ops_per_sec.max(1.0);
    art.metric("headline/hybrid_over_tl2".to_string(), ratio);
    println!("headline hybrid/tl2 throughput ratio: {ratio:.2}x (expect >= 1.0)");
    assert!(
        ratio >= HEADLINE_MIN_RATIO,
        "hybrid lost decisively to TL2-only on the high-contention \
         headline cell ({:.0} vs {:.0} ops/s, best of {HEADLINE_REPS}): \
         failover is supposed to pay for itself exactly here",
        hy.ops_per_sec,
        tl2.ops_per_sec,
    );

    art.finish();
    check_native_baseline(art.metrics());
}
