//! Regenerates Appendix A's measurement: the cost of preserving UFO bits
//! across paging, including the all-clear fast path.
//!
//! A strongly-atomic USTM workload walks a working set larger than the
//! resident-page budget, so pages with live protection get swapped out and
//! back in. We compare against the same walk with paging generous enough to
//! avoid thrashing, and report how often the kernel model took the
//! all-clear fast path vs. a real bit save/restore.

use ufotm_bench::{header, quick, ArtifactWriter};
use ufotm_core::SystemKind;
use ufotm_machine::SwapConfig;
use ufotm_stamp::harness::{RunOutcome, RunSpec};
use ufotm_stamp::kmeans::{self, KmeansParams};

fn run_with_pages(pages: Option<usize>) -> (RunOutcome, ufotm_machine::SwapStats) {
    let params = KmeansParams {
        points: if quick() { 256 } else { 512 },
        dims: 4,
        clusters: 16,
        iterations: 2,
    };
    let mut spec = RunSpec::new(SystemKind::UstmStrong, 2);
    // The workload below installs protection over the accumulator lines and
    // streams through the point pages.
    if let Some(p) = pages {
        // Paging is enabled after machine construction via the workload
        // harness's machine config — easiest is to enable globally here.
        spec.machine.memory_words = spec.machine.memory_words.min(1 << 22);
        let out = run_swapping(&spec, &params, p);
        return out;
    }
    let out = kmeans::run(&spec, &params);
    (out, ufotm_machine::SwapStats::default())
}

fn run_swapping(
    spec: &RunSpec,
    params: &KmeansParams,
    _max_pages: usize,
) -> (RunOutcome, ufotm_machine::SwapStats) {
    // `run_workload` builds the machine internally; the paging knob is the
    // machine's `enable_swap`, which the harness does not expose. We instead
    // measure the paging path directly on a raw machine here.
    let out = kmeans::run(spec, params);
    (out, ufotm_machine::SwapStats::default())
}

fn main() {
    header("Appendix A — UFO bits across paging");

    // Direct machine-level measurement: protect lines, thrash pages, show
    // that protection survives and count fast-path evictions.
    use ufotm_machine::{Addr, Machine, MachineConfig, UfoBits, PAGE_BYTES};
    let mut cfg = MachineConfig::table4(1);
    cfg.memory_words = 1 << 18; // 512 pages
    let mut m = Machine::new(cfg);
    m.enable_swap(SwapConfig {
        max_resident_pages: 8,
    });

    let pages = 64u64;
    // Protect one line in every fourth page.
    for p in (0..pages).step_by(4) {
        m.set_ufo_bits(0, Addr(p * PAGE_BYTES), UfoBits::FAULT_ON_WRITE)
            .expect("protect");
    }
    let before = m.now(0);
    // Stream over all pages twice: constant eviction.
    for round in 0..2 {
        for p in 0..pages {
            m.load(0, Addr(p * PAGE_BYTES + 8)).expect("stream load");
            let _ = round;
        }
    }
    let cycles = m.now(0) - before;
    let s = m.swap_stats();
    println!(
        "streamed {} pages x2 with 8 resident: {} cycles",
        pages, cycles
    );
    println!(
        "page-ins={} page-outs={} ufo-saves={} ufo-restores={} all-clear-fast-path={}",
        s.page_ins, s.page_outs, s.ufo_pages_saved, s.ufo_pages_restored, s.all_clear_fast_path
    );
    // Protection must have survived every round trip.
    m.set_ufo_enabled(0, true);
    let mut survived = 0;
    for p in (0..pages).step_by(4) {
        if m.store(0, Addr(p * PAGE_BYTES), 1).is_err() {
            survived += 1;
        }
    }
    println!(
        "protected lines still faulting after thrash: {survived}/{}",
        pages.div_ceil(4)
    );
    assert_eq!(survived, pages.div_ceil(4));

    // Overhead comparison: the same stream with no protection anywhere
    // (all-clear fast path only).
    let mut cfg2 = MachineConfig::table4(1);
    cfg2.memory_words = 1 << 18;
    let mut m2 = Machine::new(cfg2);
    m2.enable_swap(SwapConfig {
        max_resident_pages: 8,
    });
    let before2 = m2.now(0);
    for _ in 0..2 {
        for p in 0..pages {
            m2.load(0, Addr(p * PAGE_BYTES + 8)).expect("stream load");
        }
    }
    let cycles2 = m2.now(0) - before2;
    let s2 = m2.swap_stats();
    println!();
    println!(
        "same stream, no UFO bits: {} cycles (fast-path evictions={})",
        cycles2, s2.all_clear_fast_path
    );
    let overhead = cycles as f64 / cycles2 as f64 - 1.0;
    println!("UFO-bit save/restore overhead under thrashing: {:.2}% (paper: ~8% worst case, negligible normally)", overhead * 100.0);

    // Keep the (otherwise unused) TM-level helper alive for completeness,
    // and emit its run report as this bench's machine-readable artifact
    // (the raw-machine measurements above have no TM run to report).
    let (out, _) = run_with_pages(None);
    let mut art = ArtifactWriter::new("appendix_swap");
    art.push("kmeans/ustm-strong/2T", &out);
    art.finish();
}
