//! # `ufotm-bench` — the benchmark harness
//!
//! One bench target per table/figure of the paper's evaluation (run with
//! `cargo bench`):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `table4`          | Table 4 (simulation parameters) |
//! | `fig5_speedup`    | Figure 5 (speedup vs. sequential, per workload × system × threads) |
//! | `fig6_aborts`     | Figure 6 (hardware abort-reason breakdown per hybrid) |
//! | `fig7_failover`   | Figure 7a/7b (microbenchmark speedup vs. failover rate, 0 % overheads, UFO/HyTM crossover) |
//! | `fig8_sensitivity`| Figure 8 (contention-management policy sensitivity) |
//! | `appendix_swap`   | Appendix A (UFO bits across paging; all-clear fast path) |
//! | `criterion_micro` | wall-time microbenchmarks of the substrate itself |
//!
//! Set `UFOTM_BENCH_QUICK=1` to shrink sweeps for smoke runs.
//!
//! Absolute simulated-cycle numbers differ from the paper's testbed; the
//! *shapes* (orderings, crossovers, degradation modes) are the reproduction
//! target — see EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use ufotm_core::{json_escape, SystemKind};
use ufotm_machine::AbortReason;
use ufotm_stamp::harness::{RunOutcome, RunSpec};

/// Whether quick (smoke-test) mode is requested.
#[must_use]
pub fn quick() -> bool {
    std::env::var("UFOTM_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// The thread counts swept by the figures.
#[must_use]
pub fn thread_counts() -> Vec<usize> {
    if quick() {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// The thread counts the native (real-OS-thread) benches sweep: 1–16,
/// capped at the host's available cores so oversubscribed cells don't
/// report scheduler noise as backend throughput. Quick mode shrinks the
/// sweep the same way the simulated figures do.
#[must_use]
pub fn native_thread_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let sweep: &[usize] = if quick() { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let capped: Vec<usize> = sweep.iter().copied().filter(|&t| t <= cores).collect();
    if capped.is_empty() {
        vec![1]
    } else {
        capped
    }
}

/// Extracts a numeric value for `key` from a flat JSON object without a
/// JSON dependency (the same trick the perf-wallclock baseline uses).
#[must_use]
pub fn parse_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Resolves a baseline file path from a gate env var. Cargo runs bench
/// binaries with the *package* directory as CWD, while CI and humans
/// pass workspace-root-relative paths like
/// `crates/bench/perf_baseline.json` — so a relative path that doesn't
/// resolve as given is retried against the workspace root.
#[must_use]
pub fn resolve_baseline_path(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() || p.exists() {
        return p;
    }
    let alt = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    if alt.exists() {
        alt
    } else {
        p
    }
}

/// Enforces the committed native-throughput baseline when armed.
///
/// `$UFOTM_NATIVE_BASELINE` names a JSON file mapping metric keys (the
/// same `"<label>/<threads>T/ops_per_sec"` keys the native benches emit)
/// to committed ops/sec floors. Each measured metric present in the
/// baseline must reach at least a third of its committed value —
/// generous, like the simulator's ns/cycle gate, so runner noise
/// passes but an order-of-magnitude backend regression fails CI. Keys
/// absent from the baseline (e.g. thread counts the baseline host did
/// not have) are skipped.
///
/// # Panics
///
/// Panics if the baseline file is unreadable, or if any measured metric
/// falls below a third of its committed floor.
pub fn check_native_baseline(metrics: &[(String, f64)]) {
    let Ok(path) = std::env::var("UFOTM_NATIVE_BASELINE") else {
        println!("(UFOTM_NATIVE_BASELINE unset: native throughput gate skipped)");
        return;
    };
    let path = resolve_baseline_path(&path);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading native baseline {}: {e}", path.display()));
    let mut checked = 0;
    for (key, measured) in metrics {
        let Some(baseline) = parse_json_number(&text, key) else {
            continue;
        };
        let floor = baseline / 3.0;
        println!("native gate: {key} measured {measured:.0} ops/s vs floor {floor:.0} (baseline {baseline:.0})");
        assert!(
            *measured >= floor,
            "native throughput regression: {key} measured {measured:.0} ops/s, \
             below a third of the committed baseline {baseline:.0} \
             (see crates/bench/native_baseline.json)"
        );
        checked += 1;
    }
    println!(
        "native throughput gate: {checked} metric(s) checked against {}",
        path.display()
    );
}

/// The systems plotted in Figure 5, in the paper's legend order.
#[must_use]
pub fn fig5_systems() -> Vec<SystemKind> {
    vec![
        SystemKind::UnboundedHtm,
        SystemKind::UfoHybrid,
        SystemKind::HyTm,
        SystemKind::PhTm,
        SystemKind::UstmStrong,
        SystemKind::UstmWeak,
        SystemKind::Tl2,
    ]
}

/// Formats a speedup as the paper's figures would plot it.
#[must_use]
pub fn speedup(seq_makespan: u64, makespan: u64) -> f64 {
    seq_makespan as f64 / makespan.max(1) as f64
}

/// Prints one figure header.
pub fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Prints a speedup table: rows = systems, columns = thread counts.
pub fn print_speedup_table(workload: &str, threads: &[usize], rows: &[(SystemKind, Vec<f64>)]) {
    println!();
    println!("-- {workload}: speedup over sequential --");
    print!("{:<14}", "system");
    for t in threads {
        print!("{t:>8}T");
    }
    println!();
    for (kind, speedups) in rows {
        print!("{:<14}", kind.label());
        for s in speedups {
            print!("{s:>9.2}");
        }
        println!();
    }
}

/// The Figure 6 abort buckets, in presentation order.
#[must_use]
pub fn fig6_buckets() -> Vec<(&'static str, Vec<AbortReason>)> {
    vec![
        ("conflict", vec![AbortReason::Conflict]),
        ("nonT-conflict", vec![AbortReason::NonTConflict]),
        ("ufo-set", vec![AbortReason::UfoSet]),
        ("ufo-fault", vec![AbortReason::UfoFault]),
        ("overflow", vec![AbortReason::Overflow]),
        ("explicit", vec![AbortReason::Explicit]),
        (
            "recoverable",
            vec![
                AbortReason::Interrupt,
                AbortReason::PageFault,
                AbortReason::Spurious,
            ],
        ),
        (
            "unsupported",
            vec![
                AbortReason::Syscall,
                AbortReason::Io,
                AbortReason::Exception,
                AbortReason::Uncacheable,
                AbortReason::DepthOverflow,
                AbortReason::IllegalOp,
            ],
        ),
    ]
}

/// Prints the Figure 6 abort-breakdown table for a set of outcomes.
pub fn print_abort_breakdown(workload: &str, outcomes: &[&RunOutcome]) {
    println!();
    println!("-- {workload}: HTM aborts per 100 committed txns --");
    print!("{:<14}", "system");
    for (name, _) in fig6_buckets() {
        print!("{name:>14}");
    }
    println!("{:>10}", "commits");
    for o in outcomes {
        print!("{:<14}", o.kind.label());
        let commits = o.total_commits().max(1) as f64;
        for (_, reasons) in fig6_buckets() {
            let n: u64 = reasons.iter().map(|&r| o.aborts_for(r)).sum();
            print!("{:>14.1}", n as f64 * 100.0 / commits);
        }
        println!("{:>10}", o.total_commits());
    }
}

/// Summarizes an outcome into a one-line record (for EXPERIMENTS.md).
#[must_use]
pub fn one_line(o: &RunOutcome) -> String {
    format!(
        "{:<14} {}T makespan={:>12} hw={:>6} sw={:>6} aborts={:>6} failovers={:>4}",
        o.kind.label(),
        o.threads,
        o.makespan,
        o.hw_commits,
        o.sw_commits,
        o.total_aborts(),
        o.failovers.values().sum::<u64>() + o.forced_failovers,
    )
}

/// Turns a human title ("kmeans high contention") into an artifact label
/// segment ("kmeans-high-contention").
#[must_use]
pub fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_whitespace() { '-' } else { c })
        .collect()
}

/// A named run spec builder used by several figures.
#[must_use]
pub fn spec(kind: SystemKind, threads: usize) -> RunSpec {
    RunSpec::new(kind, threads)
}

/// Host-side wall-clock measurement of one run, recorded alongside the
/// simulated counters so host regressions are visible in `BENCH_*.json`.
///
/// Unlike everything else in the artifact, these numbers depend on the host
/// machine and are *not* byte-deterministic across runs — compare them as
/// trends (the CI gate allows a generous 3× band), not as exact values.
#[derive(Clone, Copy, Debug)]
pub struct HostMetrics {
    /// Wall-clock nanoseconds the run took on the host.
    pub ns: u64,
    /// Simulated cycles covered (normally the run's makespan).
    pub sim_cycles: u64,
}

impl HostMetrics {
    /// Measures the wall-clock time of `f` against the simulated cycles it
    /// reports back.
    pub fn measure<R>(f: impl FnOnce() -> (u64, R)) -> (Self, R) {
        let start = std::time::Instant::now();
        let (sim_cycles, r) = f();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (HostMetrics { ns, sim_cycles }, r)
    }

    /// Host nanoseconds spent per simulated cycle — the headline number the
    /// perf gate tracks.
    #[must_use]
    pub fn ns_per_cycle(&self) -> f64 {
        self.ns as f64 / self.sim_cycles.max(1) as f64
    }

    fn to_json(self) -> String {
        format!(
            "{{\"ns\":{},\"sim_cycles\":{},\"ns_per_cycle\":{:.4}}}",
            self.ns,
            self.sim_cycles,
            self.ns_per_cycle()
        )
    }
}

/// One recorded run: a label plus an optional simulated report and optional
/// host timing.
#[derive(Debug)]
struct RunRecord {
    label: String,
    report: Option<String>,
    host: Option<HostMetrics>,
}

/// Accumulates [`RunReport`](ufotm_core::RunReport)s from a bench target
/// and writes them as one `BENCH_<name>.json` machine-readable artifact.
///
/// The artifact is deterministic byte-for-byte across same-seed runs: run
/// order is push order (the bench's fixed sweep order) and each report
/// serializes integers with fixed key order — see `docs/RUN_REPORT.md`.
/// Runs recorded with [`HostMetrics`] additionally carry a `"host"` object,
/// which is wall-clock data and exempt from the byte-determinism guarantee.
#[derive(Debug)]
pub struct ArtifactWriter {
    name: &'static str,
    runs: Vec<RunRecord>,
    metrics: Vec<(String, f64)>,
}

impl ArtifactWriter {
    /// Creates a writer for the bench target `name` (the file becomes
    /// `BENCH_<name>.json`).
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        ArtifactWriter {
            name,
            runs: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records a named scalar result (emitted as a top-level `"metrics"`
    /// object), e.g. a computed speedup ratio.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.push((key.into(), value));
    }

    /// Records one run under a label like `"vacation/ufo-hybrid/4T"`.
    pub fn push(&mut self, label: impl Into<String>, outcome: &RunOutcome) {
        self.runs.push(RunRecord {
            label: label.into(),
            report: Some(outcome.report.to_json()),
            host: None,
        });
    }

    /// Records one run with host wall-clock timing attached.
    pub fn push_with_host(
        &mut self,
        label: impl Into<String>,
        outcome: &RunOutcome,
        host: HostMetrics,
    ) {
        self.runs.push(RunRecord {
            label: label.into(),
            report: Some(outcome.report.to_json()),
            host: Some(host),
        });
    }

    /// Records a host-timing-only run (no simulated report), e.g. a raw
    /// engine micro-measurement.
    pub fn push_host(&mut self, label: impl Into<String>, host: HostMetrics) {
        self.runs.push(RunRecord {
            label: label.into(),
            report: None,
            host: Some(host),
        });
    }

    /// The scalar metrics recorded so far (push order) — what the native
    /// throughput gate checks against its committed baseline.
    #[must_use]
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Number of runs recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The artifact body (deterministic JSON apart from `"host"` objects).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bench\":\"");
        out.push_str(self.name);
        out.push_str("\",\"runs\":[");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":\"");
            // Labels are bench-authored slugs, but escape fully anyway
            // (control characters included) so no label can corrupt the
            // artifact — same routine the run reports use.
            out.push_str(&json_escape(&run.label));
            out.push('"');
            if let Some(report) = &run.report {
                out.push_str(",\"report\":");
                out.push_str(report);
            }
            if let Some(host) = run.host {
                out.push_str(",\"host\":");
                out.push_str(&host.to_json());
            }
            out.push('}');
        }
        out.push(']');
        if !self.metrics.is_empty() {
            out.push_str(",\"metrics\":{");
            for (i, (k, v)) in self.metrics.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(k));
                out.push_str(&format!("\":{v:.4}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Writes `BENCH_<name>.json` into `$UFOTM_BENCH_OUT` (default: the
    /// current directory) and returns the path.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written: a bench that silently drops
    /// its artifact would look like a passing run with missing data.
    pub fn finish(&self) -> std::path::PathBuf {
        let dir = std::env::var("UFOTM_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!();
        println!("wrote {} ({} runs)", path.display(), self.runs.len());
        path
    }
}

/// Accumulates measured series so benches can print a compact recap.
#[derive(Debug, Default)]
pub struct Recap {
    lines: BTreeMap<String, String>,
}

impl Recap {
    /// Creates an empty recap.
    #[must_use]
    pub fn new() -> Self {
        Recap::default()
    }

    /// Records a named measurement.
    pub fn note(&mut self, key: &str, value: impl std::fmt::Display) {
        self.lines.insert(key.to_string(), value.to_string());
    }

    /// Prints all recorded measurements.
    pub fn print(&self, title: &str) {
        println!();
        println!("-- {title}: recap --");
        for (k, v) in &self.lines {
            println!("  {k}: {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_labels_and_metric_keys_are_fully_escaped() {
        let mut art = ArtifactWriter::new("escape_test");
        art.push_host(
            "weird \"label\"\\with\nnewline",
            HostMetrics {
                ns: 1,
                sim_cycles: 1,
            },
        );
        art.metric("key\"with\tcontrols\u{1}", 1.0);
        let json = art.to_json();
        assert!(json.contains(r#"weird \"label\"\\with\nnewline"#));
        assert!(json.contains(r#"key\"with\tcontrols\u0001"#));
        // Nothing that would break a strict JSON parser survives: no raw
        // control characters anywhere in the artifact.
        assert!(json.chars().all(|c| c as u32 >= 0x20));
    }
}
