//! Chaos-engine demo: run the shared-counter torture workload under a
//! seeded fault plan and print what the machine injected, what the
//! watchdog did about it, and proof that the run replays bit-for-bit.
//!
//! ```text
//! cargo run -p ufotm-bench --example chaos_demo -- [seed] [mix] [system]
//!   seed    u64, default 1
//!   mix     quiet | mixed | abort-storm | nack-storm   (default mixed)
//!   system  ufo-hybrid | ustm | lock                   (default ufo-hybrid)
//! ```

use ufotm_core::{HybridPolicy, SystemKind, TmShared, TmThread};
use ufotm_machine::{Addr, FaultPlan, Machine, MachineConfig, SwapConfig};
use ufotm_sim::{Ctx, Sim, SimResult, ThreadFn};

const COUNTER: Addr = Addr(0);
const CPUS: usize = 3;
const TXNS: u64 = 8;

fn run(kind: SystemKind, plan: FaultPlan, trace: bool) -> SimResult<TmShared> {
    let mut cfg = MachineConfig::table4(CPUS);
    cfg.memory_words = 1 << 19;
    cfg.fault_plan = Some(plan);
    let mut shared = TmShared::standard(kind, &cfg);
    if trace {
        shared.trace.enable(4096);
    }
    let mut machine = Machine::new(cfg);
    machine.enable_swap(SwapConfig {
        max_resident_pages: 64,
    });
    Sim::new(machine, shared).run(
        (0..CPUS)
            .map(|cpu| -> ThreadFn<TmShared> {
                Box::new(move |ctx: &mut Ctx<TmShared>| {
                    let mut t = TmThread::with_policy(kind, cpu, HybridPolicy::watchdog());
                    t.install(ctx);
                    let slot = Addr(4096 + cpu as u64 * 64);
                    for _ in 0..TXNS {
                        t.transaction(ctx, |tx, ctx| {
                            let v = tx.read(ctx, COUNTER)?;
                            tx.work(ctx, 60)?;
                            let s = tx.read(ctx, slot)?;
                            tx.write(ctx, slot, s + 1)?;
                            tx.write(ctx, COUNTER, v + 1)
                        });
                    }
                })
            })
            .collect(),
    )
}

fn digest(r: &SimResult<TmShared>) -> (u64, u64, u64, u64, u64, u64) {
    (
        r.makespan,
        r.machine.peek(COUNTER),
        r.shared.stats.hw_commits,
        r.shared.stats.sw_commits,
        r.shared.stats.serial_commits,
        r.machine.chaos_stats().total(),
    )
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let seed: u64 = argv.next().map_or(1, |s| s.parse().expect("seed: u64"));
    let mix = argv.next().unwrap_or_else(|| "mixed".into());
    let plan: fn(u64) -> FaultPlan = match mix.as_str() {
        "quiet" => FaultPlan::quiet,
        "mixed" => FaultPlan::mixed,
        "abort-storm" => FaultPlan::abort_storm,
        "nack-storm" => FaultPlan::nack_storm,
        other => panic!("unknown mix {other:?} (quiet|mixed|abort-storm|nack-storm)"),
    };
    let kind = match argv.next().as_deref() {
        None | Some("ufo-hybrid") => SystemKind::UfoHybrid,
        Some("ustm") => SystemKind::UstmStrong,
        Some("lock") => SystemKind::GlobalLock,
        Some(other) => panic!("unknown system {other:?} (ufo-hybrid|ustm|lock)"),
    };

    let r = run(kind, plan(seed), true);
    let expected = CPUS as u64 * TXNS;
    let got = r.machine.peek(COUNTER);
    let c = r.machine.chaos_stats();
    let s = &r.shared.stats;

    println!("chaos demo: {kind} / {mix} / seed {seed}");
    println!("  counter            {got} (expected {expected})");
    println!("  makespan           {} cycles", r.makespan);
    println!(
        "  commits            hw {} / sw {} / lock {} / serial {}",
        s.hw_commits, s.sw_commits, s.lock_commits, s.serial_commits
    );
    println!(
        "  watchdog           {} escalations, {} hw retries",
        s.watchdog_escalations, s.hw_retries
    );
    println!(
        "  injected faults    {} spurious-abort / {} evict / {} nack / {} ufo-retry / {} thrash",
        c.spurious_aborts, c.forced_evictions, c.injected_nacks, c.ufo_set_retries, c.swap_thrashes
    );
    let events = r.shared.trace.events();
    println!("  trace journal      {} events; last 5:", events.len());
    for e in events.iter().rev().take(5).rev() {
        println!("    [cpu {} @ {:>8}] {:?}", e.cpu, e.cycle, e.kind);
    }

    let replay = digest(&run(kind, plan(seed), false));
    let first = digest(&r);
    println!(
        "  replay             {}",
        if replay == first {
            "bit-for-bit identical"
        } else {
            "DIVERGED"
        }
    );
    assert_eq!(got, expected, "lost or doubled increments");
    assert_eq!(replay, first, "replay diverged");
}
