//! genome: segment de-duplication and sorted assembly (paper §5.1).
//!
//! Phase 1 inserts overlapping random segments into a shared hash set
//! (small transactions, moderate contention on buckets). Phase 2 inserts
//! the unique segments into a shared **sorted linked list** — the paper
//! singles this out: inserts read the whole list prefix, so a writer kills
//! every younger reader of the written prefix, making genome the stress
//! test for robust contention management and the source of its periodic
//! cache overflows (long prefixes overflow the L1).

use ufotm_machine::{Addr, Machine, PlainAccess};

use crate::harness::{chunk, run_workload, RunOutcome, RunSpec, STATIC_BASE};
use crate::structures::{HashSet, SortedList};
use crate::world::{Barrier, StampWorld};

/// genome parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenomeParams {
    /// Raw segments generated (with duplicates).
    pub segments: usize,
    /// Distinct segment value space (smaller = more duplicates).
    pub segment_space: u64,
    /// Hash-set buckets (power of two).
    pub buckets: u64,
}

impl GenomeParams {
    /// The scaled-down default configuration.
    #[must_use]
    pub fn standard() -> Self {
        GenomeParams {
            segments: 384,
            segment_space: 1 << 30,
            buckets: 128,
        }
    }

    fn set_base(&self) -> Addr {
        STATIC_BASE
    }

    fn list_head(&self) -> Addr {
        self.set_base().add_words(self.buckets)
    }
}

fn segment(seed: u64, i: usize) -> u64 {
    let mut x = seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    // Bias toward duplicates: fold into the segment space, then square off
    // the low bits so nearby indices collide sometimes.
    (x % (1 << 16)) % 977 + (x % 7) * 1000 + 1 // never 0 (0 = null key)
}

/// Runs genome under `spec`.
///
/// # Panics
///
/// Panics if verification fails: the final list must contain exactly the
/// distinct segments, in sorted order, and the hash set must agree.
pub fn run(spec: &RunSpec, params: &GenomeParams) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;

    let setup = move |_m: &mut Machine, _w: &mut StampWorld| {
        // Bucket array and list head start zeroed; nothing to do.
    };

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let set = HashSet::new(p.set_base(), p.buckets);
            let list = SortedList::new(p.list_head());
            let (start, end) = chunk(p.segments, threads, tid);
            // Phase 1: de-duplicate into the hash set. Remember which keys
            // *we* inserted first — exactly those are ours to assemble.
            let mut mine = Vec::new();
            for i in start..end {
                let key = segment(seed, i);
                let fresh = t.transaction(ctx, |tx, ctx| set.insert(tx, ctx, key));
                if fresh {
                    mine.push(key);
                }
                ctx.work(30).plain("segment prep");
            }
            Barrier::wait(ctx);
            // Phase 2: sorted assembly (the contention stress).
            for key in mine {
                let inserted = t.transaction(ctx, |tx, ctx| list.insert(tx, ctx, key, key ^ 1));
                assert!(inserted, "key {key} was uniquely ours");
                ctx.work(20).plain("assembly prep");
            }
            Barrier::wait(ctx);
            // Phase 3: matching — read-mostly probes against the set (the
            // bulk of STAMP genome's runtime; embarrassingly parallel).
            for i in start..end {
                let key = segment(seed, i);
                let probes = [key, key ^ 3, key.wrapping_add(17)];
                let hits = t.transaction(ctx, |tx, ctx| {
                    let mut hits = 0u64;
                    for p in probes {
                        if set.contains(tx, ctx, p)? {
                            hits += 1;
                        }
                    }
                    Ok(hits)
                });
                assert!(hits >= 1, "own segment must be present");
                ctx.work(120).plain("match compute");
            }
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        let set = HashSet::new(p.set_base(), p.buckets);
        let list = SortedList::new(p.list_head());
        let mut expected: Vec<u64> = (0..p.segments).map(|i| segment(seed, i)).collect();
        expected.sort_unstable();
        expected.dedup();
        let keys = list.peek_keys(m);
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "list must be strictly sorted"
        );
        assert_eq!(
            keys, expected,
            "list contents diverge from the distinct segments"
        );
        let mut set_keys = set.peek_all(m);
        set_keys.sort_unstable();
        assert_eq!(set_keys, expected, "hash set contents diverge");
    };

    run_workload(spec, setup, make_body, verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    fn tiny() -> GenomeParams {
        GenomeParams {
            segments: 80,
            segment_space: 1 << 30,
            buckets: 32,
        }
    }

    #[test]
    fn genome_verifies_on_sequential() {
        run(&RunSpec::new(SystemKind::Sequential, 1), &tiny());
    }

    #[test]
    fn genome_verifies_on_hybrids_and_stms() {
        for kind in [
            SystemKind::UfoHybrid,
            SystemKind::PhTm,
            SystemKind::UstmStrong,
            SystemKind::Tl2,
        ] {
            run(&RunSpec::new(kind, 3), &tiny());
        }
    }

    #[test]
    fn genome_has_duplicates_to_deduplicate() {
        let p = tiny();
        let mut all: Vec<u64> = (0..p.segments).map(|i| segment(1, i)).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert!(all.len() < total, "parameters should produce duplicates");
        assert!(all.len() > total / 4, "but not only duplicates");
    }
}
