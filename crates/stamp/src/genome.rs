//! genome: segment de-duplication and sorted assembly (paper §5.1).
//!
//! Phase 1 inserts overlapping random segments into a shared hash set
//! (small transactions, moderate contention on buckets). Phase 2 inserts
//! the unique segments into a shared **sorted linked list** — the paper
//! singles this out: inserts read the whole list prefix, so a writer kills
//! every younger reader of the written prefix, making genome the stress
//! test for robust contention management and the source of its periodic
//! cache overflows (long prefixes overflow the L1).
//!
//! The workload is written once against [`TmBackend`] and runs on both
//! substrates: [`run`] on the simulated machine (cycle-charged,
//! deterministic), [`run_native`] on host atomics — TL2-only or the
//! failover hybrid, per `spec.backend`.

use ufotm_core::{BackendKind, TmBackend};
use ufotm_machine::{Addr, Machine};

use crate::backend::SimBackend;
use crate::harness::{
    chunk, native_heap, native_hybrid_world, run_native_hybrid_workload, run_native_workload,
    run_workload, NativeOutcome, RunOutcome, RunSpec, STATIC_BASE,
};
use crate::structures::{HashSet, Peek, SortedList};
use crate::world::StampWorld;

/// genome parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenomeParams {
    /// Raw segments generated (with duplicates).
    pub segments: usize,
    /// Distinct segment value space (smaller = more duplicates).
    pub segment_space: u64,
    /// Hash-set buckets (power of two).
    pub buckets: u64,
}

impl GenomeParams {
    /// The scaled-down default configuration.
    #[must_use]
    pub fn standard() -> Self {
        GenomeParams {
            segments: 384,
            segment_space: 1 << 30,
            buckets: 128,
        }
    }

    fn set_base(&self) -> Addr {
        STATIC_BASE
    }

    fn list_head(&self) -> Addr {
        self.set_base().add_words(self.buckets)
    }

    /// One past the last static byte (for native heap sizing): the
    /// bucket array plus the list-head word.
    fn static_end(&self) -> Addr {
        self.list_head().add_words(1)
    }

    /// Transactional-allocation headroom for native heaps: one node per
    /// raw segment in each of the two structures, with slack.
    fn native_alloc_words(&self) -> u64 {
        (self.segments as u64 * 2 + 64) * 8
    }

    /// The number of distinct segments the seed produces — deterministic,
    /// so both the ops count and the verifier know it up front.
    fn distinct_segments(&self, seed: u64) -> Vec<u64> {
        let mut all: Vec<u64> = (0..self.segments).map(|i| segment(seed, i)).collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

fn segment(seed: u64, i: usize) -> u64 {
    let mut x = seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    // Bias toward duplicates: fold into the segment space, then square off
    // the low bits so nearby indices collide sometimes.
    (x % (1 << 16)) % 977 + (x % 7) * 1000 + 1 // never 0 (0 = null key)
}

/// One thread's whole run, written once against the backend traits.
fn phase_body<B: TmBackend>(b: &mut B, p: GenomeParams, seed: u64) {
    let set = HashSet::new(p.set_base(), p.buckets);
    let list = SortedList::new(p.list_head());
    let (start, end) = chunk(p.segments, b.threads(), b.tid());
    // Phase 1: de-duplicate into the hash set. Remember which keys
    // *we* inserted first — exactly those are ours to assemble.
    let mut mine = Vec::new();
    for i in start..end {
        let key = segment(seed, i);
        let fresh = b.transaction(|tx| set.insert(tx, key));
        if fresh {
            mine.push(key);
        }
        b.compute(30);
    }
    b.barrier();
    // Phase 2: sorted assembly (the contention stress).
    for key in mine {
        let inserted = b.transaction(|tx| list.insert(tx, key, key ^ 1));
        assert!(inserted, "key {key} was uniquely ours");
        b.compute(20);
    }
    b.barrier();
    // Phase 3: matching — read-mostly probes against the set (the
    // bulk of STAMP genome's runtime; embarrassingly parallel).
    for i in start..end {
        let key = segment(seed, i);
        let probes = [key, key ^ 3, key.wrapping_add(17)];
        let hits = b.transaction(|tx| {
            let mut hits = 0u64;
            for p in probes {
                if set.contains(tx, p)? {
                    hits += 1;
                }
            }
            Ok(hits)
        });
        assert!(hits >= 1, "own segment must be present");
        b.compute(120);
    }
}

/// Host-side verification, shared by both substrates: the final list must
/// contain exactly the distinct segments, in sorted order, and the hash
/// set must agree.
fn check_final(p: GenomeParams, seed: u64, peek: &Peek<'_>) {
    let set = HashSet::new(p.set_base(), p.buckets);
    let list = SortedList::new(p.list_head());
    let expected = p.distinct_segments(seed);
    let keys = list.peek_keys(peek);
    assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "list must be strictly sorted"
    );
    assert_eq!(
        keys, expected,
        "list contents diverge from the distinct segments"
    );
    let mut set_keys = set.peek_all(peek);
    set_keys.sort_unstable();
    assert_eq!(set_keys, expected, "hash set contents diverge");
}

/// Runs genome under `spec` on the simulated machine.
///
/// # Panics
///
/// Panics if verification fails (see `check_final`'s invariants).
pub fn run(spec: &RunSpec, params: &GenomeParams) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;

    let setup = move |_m: &mut Machine, _w: &mut StampWorld| {
        // Bucket array and list head start zeroed; nothing to do.
    };

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let mut b = SimBackend::new(t, ctx, tid, threads);
            phase_body(&mut b, p, seed);
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        check_final(p, seed, &|a| m.peek(a));
    };

    run_workload(spec, setup, make_body, verify)
}

/// Runs genome on a native backend — host-atomics TL2 or the failover
/// hybrid, per `spec.backend`: the *same* `phase_body` on real OS
/// threads, verified by the same host-side dedup/sort replay.
///
/// # Panics
///
/// Panics if verification fails or `spec.backend` is simulated.
pub fn run_native(spec: &RunSpec, params: &GenomeParams) -> NativeOutcome {
    let p = *params;
    let seed = spec.seed;
    // One transaction per raw segment in phases 1 and 3, plus one per
    // distinct segment in phase 2 — deterministic from the seed.
    let ops = (p.segments * 2 + p.distinct_segments(seed).len()) as u64;
    if spec.backend == BackendKind::NativeHybrid {
        let h = native_hybrid_world(p.static_end(), p.native_alloc_words(), spec.threads);
        run_native_hybrid_workload(
            spec,
            &h,
            |_t| {},
            |th| phase_body(th, p, seed),
            |t| check_final(p, seed, &|a| t.peek(a)),
            ops,
        )
    } else {
        let heap = native_heap(p.static_end(), p.native_alloc_words());
        run_native_workload(
            spec,
            &heap,
            |_h| {},
            |th| phase_body(th, p, seed),
            |h| check_final(p, seed, &|a| h.peek(a)),
            ops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    fn tiny() -> GenomeParams {
        GenomeParams {
            segments: 80,
            segment_space: 1 << 30,
            buckets: 32,
        }
    }

    #[test]
    fn genome_verifies_on_sequential() {
        run(&RunSpec::new(SystemKind::Sequential, 1), &tiny());
    }

    #[test]
    fn genome_verifies_on_hybrids_and_stms() {
        for kind in [
            SystemKind::UfoHybrid,
            SystemKind::PhTm,
            SystemKind::UstmStrong,
            SystemKind::Tl2,
        ] {
            run(&RunSpec::new(kind, 3), &tiny());
        }
    }

    #[test]
    fn genome_verifies_on_native_threads() {
        let p = tiny();
        let out = run_native(&RunSpec::native(3), &p);
        assert_eq!(out.total_commits(), out.ops, "one commit per transaction");
    }

    #[test]
    fn genome_verifies_on_native_hybrid() {
        let p = tiny();
        let out = run_native(&RunSpec::native_hybrid(3), &p);
        assert_eq!(out.total_commits(), out.ops, "one commit per transaction");
    }

    #[test]
    fn genome_has_duplicates_to_deduplicate() {
        let p = tiny();
        let all = p.distinct_segments(1);
        let total = p.segments;
        assert!(all.len() < total, "parameters should produce duplicates");
        assert!(all.len() > total / 4, "but not only duplicates");
    }
}
