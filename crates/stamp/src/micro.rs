//! The software-failover microbenchmark (paper §5.3, Figure 7).
//!
//! Each thread runs conflict-free transactions over its own private lines;
//! a prescribed fraction of transactions is randomly forced to fail over
//! to software. This isolates the cost of failover from contention: the
//! UFO hybrid and HyTM degrade linearly toward pure-STM performance with
//! the failover rate, while PhTM degrades faster because one software
//! transaction drags concurrent hardware transactions along with it.

use ufotm_machine::{Addr, Machine, SimRng};

use crate::harness::{run_workload, RunOutcome, RunSpec, STATIC_BASE};
use crate::world::StampWorld;

/// Microbenchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct MicroParams {
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// Distinct private lines each transaction reads and writes.
    pub lines_per_txn: usize,
    /// Compute cycles inside each transaction.
    pub work_cycles: u64,
    /// Probability (0.0–1.0) that a transaction is forced to software.
    pub failover_rate: f64,
}

impl MicroParams {
    /// The standard configuration at a given failover rate.
    #[must_use]
    pub fn with_rate(failover_rate: f64) -> Self {
        MicroParams {
            txns_per_thread: 200,
            lines_per_txn: 4,
            work_cycles: 150,
            failover_rate,
        }
    }

    /// Base address of `tid`'s private region.
    fn region(&self, tid: usize) -> Addr {
        // 64 lines per thread keeps regions set-disjoint enough.
        Addr(STATIC_BASE.0 + (tid as u64) * 64 * 64)
    }
}

/// Runs the microbenchmark under `spec`.
///
/// The failover forcing is only armed for hybrid systems (pure systems have
/// nothing to fail over to; the paper plots them as flat references).
///
/// # Panics
///
/// Panics if verification fails (every private counter must equal the
/// transaction count).
pub fn run(spec: &RunSpec, params: &MicroParams) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;
    let force_armed = spec.kind.is_hybrid();

    let setup = move |_m: &mut Machine, _w: &mut StampWorld| {};

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let mut rng = SimRng::seed_from_u64(seed ^ ((tid as u64) << 24));
            let region = p.region(tid);
            // Pre-decide which transactions are forced, so retries of the
            // same transaction stay consistent.
            let forced: Vec<bool> = (0..p.txns_per_thread)
                .map(|_| force_armed && rng.gen_bool(p.failover_rate))
                .collect();
            for &force in forced.iter() {
                t.transaction(ctx, |tx, ctx| {
                    if force_armed {
                        // The hybrid's failover-decision instrumentation
                        // (the ~6% overhead the paper measures at 0%).
                        tx.work(ctx, 8)?;
                    }
                    if force {
                        tx.force_failover(ctx)?;
                    }
                    for l in 0..p.lines_per_txn {
                        let a = Addr(region.0 + (l as u64) * 64);
                        let v = tx.read(ctx, a)?;
                        tx.write(ctx, a, v + 1)?;
                    }
                    tx.work(ctx, p.work_cycles)?;
                    Ok(())
                });
            }
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        for tid in 0..threads {
            let region = p.region(tid);
            for l in 0..p.lines_per_txn {
                let a = Addr(region.0 + (l as u64) * 64);
                assert_eq!(
                    m.peek(a),
                    p.txns_per_thread as u64,
                    "thread {tid} line {l} lost updates"
                );
            }
        }
    };

    run_workload(spec, setup, make_body, verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    #[test]
    fn zero_rate_stays_in_hardware() {
        let mut spec = RunSpec::new(SystemKind::UfoHybrid, 2);
        spec.seed = 7;
        let out = run(
            &spec,
            &MicroParams {
                txns_per_thread: 40,
                ..MicroParams::with_rate(0.0)
            },
        );
        assert_eq!(out.hw_commits, 80);
        assert_eq!(out.sw_commits, 0);
    }

    #[test]
    fn full_rate_runs_everything_in_software() {
        let spec = RunSpec::new(SystemKind::UfoHybrid, 2);
        let out = run(
            &spec,
            &MicroParams {
                txns_per_thread: 40,
                ..MicroParams::with_rate(1.0)
            },
        );
        assert_eq!(out.sw_commits, 80);
        assert_eq!(out.hw_commits, 0);
        assert_eq!(out.forced_failovers, 80);
    }

    #[test]
    fn interior_rate_splits_and_slows_down() {
        let spec0 = RunSpec::new(SystemKind::UfoHybrid, 2);
        let zero = run(
            &spec0,
            &MicroParams {
                txns_per_thread: 60,
                ..MicroParams::with_rate(0.0)
            },
        );
        let half = run(
            &spec0,
            &MicroParams {
                txns_per_thread: 60,
                ..MicroParams::with_rate(0.5)
            },
        );
        assert!(half.sw_commits > 0 && half.hw_commits > 0);
        assert!(
            half.makespan > zero.makespan,
            "failover must cost simulated time ({} vs {})",
            half.makespan,
            zero.makespan
        );
    }

    #[test]
    fn pure_htm_ignores_the_rate() {
        let spec = RunSpec::new(SystemKind::UnboundedHtm, 2);
        let out = run(
            &spec,
            &MicroParams {
                txns_per_thread: 40,
                ..MicroParams::with_rate(0.9)
            },
        );
        assert_eq!(out.hw_commits, 80);
        assert_eq!(out.forced_failovers, 0);
    }

    #[test]
    fn phtm_full_rate_is_all_software() {
        let spec = RunSpec::new(SystemKind::PhTm, 2);
        let out = run(
            &spec,
            &MicroParams {
                txns_per_thread: 30,
                ..MicroParams::with_rate(1.0)
            },
        );
        assert_eq!(out.sw_commits, 60);
    }
}
