//! The simulated-substrate implementation of the core backend traits.
//!
//! [`SimBackend`] adapts one worker's ([`TmThread`], [`Ctx`]) pair to
//! [`TmBackend`], so workload bodies written against the backend traits
//! run on the deterministic machine with *exactly* the operation stream
//! the pre-refactor hand-wired bodies issued: `plain_load`/`plain_store`
//! are `nont_load`/`nont_store`, `compute` is a cycle-charged
//! `Ctx::work`, `barrier` is the simulated-address [`Barrier`], and
//! `transaction` delegates to [`TmThread::transaction`] with the scope
//! translating [`TxAbort`] to the opaque [`Stop`] token and back.
//! Simulated results are therefore byte-identical either way.

use ufotm_core::{nont_load, nont_store, Stop, TmBackend, TmThread, Tx, TxAbort, TxScope};
use ufotm_machine::{Addr, PlainAccess};
use ufotm_sim::Ctx;

use crate::world::{Barrier, StampWorld};

/// One simulated worker's backend handle: the thread runtime plus its
/// engine context.
pub struct SimBackend<'a> {
    t: &'a mut TmThread,
    ctx: &'a mut Ctx<StampWorld>,
    tid: usize,
    threads: usize,
    /// Set by [`TmBackend::force_failover_next`]: the next transaction
    /// calls [`Tx::force_failover`] on every attempt, so its hardware
    /// attempt aborts and the driver's retry machinery fails it over to
    /// software (subsequent software attempts are no-ops).
    force_next: bool,
}

impl<'a> SimBackend<'a> {
    /// Wraps a worker's runtime and context.
    #[must_use]
    pub fn new(
        t: &'a mut TmThread,
        ctx: &'a mut Ctx<StampWorld>,
        tid: usize,
        threads: usize,
    ) -> Self {
        SimBackend {
            t,
            ctx,
            tid,
            threads,
            force_next: false,
        }
    }
}

/// The in-transaction scope: a live [`Tx`] attempt plus the abort that
/// stopped it (so `transaction` can hand the real [`TxAbort`] back to the
/// driver's retry machinery instead of inventing one).
struct SimScope<'s, 'a> {
    tx: &'s mut Tx<'a>,
    ctx: &'s mut Ctx<StampWorld>,
    abort: Option<TxAbort>,
}

impl SimScope<'_, '_> {
    fn stop(&mut self, abort: TxAbort) -> Stop {
        self.abort = Some(abort);
        Stop
    }
}

impl TxScope for SimScope<'_, '_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Stop> {
        self.tx.read(self.ctx, addr).map_err(|a| self.stop(a))
    }

    fn write(&mut self, addr: Addr, value: u64) -> Result<(), Stop> {
        self.tx
            .write(self.ctx, addr, value)
            .map_err(|a| self.stop(a))
    }

    fn alloc(&mut self, words: u64) -> Result<Addr, Stop> {
        self.tx.alloc(self.ctx, words).map_err(|a| self.stop(a))
    }

    fn work(&mut self, cycles: u64) -> Result<(), Stop> {
        self.tx.work(self.ctx, cycles).map_err(|a| self.stop(a))
    }
}

impl TmBackend for SimBackend<'_> {
    fn transaction<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        let force = std::mem::take(&mut self.force_next);
        self.t.transaction(self.ctx, |tx, ctx| {
            if force {
                tx.force_failover(ctx)?;
            }
            let mut scope = SimScope {
                tx,
                ctx,
                abort: None,
            };
            match body(&mut scope) {
                Ok(r) => Ok(r),
                Err(Stop) => Err(scope.abort.take().expect(
                    "body returned a hand-made Stop: Stop tokens must originate \
                     from a scope call so the driver knows the real abort reason",
                )),
            }
        })
    }

    fn plain_load(&mut self, addr: Addr) -> u64 {
        nont_load(self.ctx, addr)
    }

    fn plain_store(&mut self, addr: Addr, value: u64) {
        nont_store(self.ctx, addr, value);
    }

    fn compute(&mut self, cycles: u64) {
        self.ctx.work(cycles).plain("backend compute");
    }

    fn barrier(&mut self) {
        Barrier::wait(self.ctx);
    }

    fn tid(&self) -> usize {
        self.tid
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn force_failover_next(&mut self) {
        self.force_next = true;
    }

    fn commit_counts(&mut self) -> (u64, u64) {
        // Fast path = hardware commits; slow path = everything the driver
        // fell back to (software STM, the lock, serial mode). The counters
        // are world-global, so per-thread deltas are only meaningful in
        // single-threaded scripts — which is what the cross-validation
        // suite runs.
        self.ctx.with(|w| {
            let s = &w.shared.tm.stats;
            (
                s.hw_commits,
                s.sw_commits + s.lock_commits + s.serial_commits,
            )
        })
    }

    fn failovers(&mut self) -> u64 {
        self.ctx.with(|w| w.shared.tm.stats.total_failovers())
    }

    fn serial_commits(&mut self) -> u64 {
        self.ctx.with(|w| w.shared.tm.stats.serial_commits)
    }
}
