//! The simulated-substrate implementation of the core backend traits.
//!
//! [`SimBackend`] adapts one worker's ([`TmThread`], [`Ctx`]) pair to
//! [`TmBackend`], so workload bodies written against the backend traits
//! run on the deterministic machine with *exactly* the operation stream
//! the pre-refactor hand-wired bodies issued: `plain_load`/`plain_store`
//! are `nont_load`/`nont_store`, `compute` is a cycle-charged
//! `Ctx::work`, `barrier` is the simulated-address [`Barrier`], and
//! `transaction` delegates to [`TmThread::transaction`] with the scope
//! translating [`TxAbort`] to the opaque [`Stop`] token and back.
//! Simulated results are therefore byte-identical either way.

use ufotm_core::{nont_load, nont_store, Stop, TmBackend, TmThread, Tx, TxAbort, TxScope};
use ufotm_machine::{Addr, PlainAccess};
use ufotm_sim::Ctx;

use crate::world::{Barrier, StampWorld};

/// One simulated worker's backend handle: the thread runtime plus its
/// engine context.
pub struct SimBackend<'a> {
    t: &'a mut TmThread,
    ctx: &'a mut Ctx<StampWorld>,
    tid: usize,
    threads: usize,
}

impl<'a> SimBackend<'a> {
    /// Wraps a worker's runtime and context.
    #[must_use]
    pub fn new(
        t: &'a mut TmThread,
        ctx: &'a mut Ctx<StampWorld>,
        tid: usize,
        threads: usize,
    ) -> Self {
        SimBackend {
            t,
            ctx,
            tid,
            threads,
        }
    }
}

/// The in-transaction scope: a live [`Tx`] attempt plus the abort that
/// stopped it (so `transaction` can hand the real [`TxAbort`] back to the
/// driver's retry machinery instead of inventing one).
struct SimScope<'s, 'a> {
    tx: &'s mut Tx<'a>,
    ctx: &'s mut Ctx<StampWorld>,
    abort: Option<TxAbort>,
}

impl SimScope<'_, '_> {
    fn stop(&mut self, abort: TxAbort) -> Stop {
        self.abort = Some(abort);
        Stop
    }
}

impl TxScope for SimScope<'_, '_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Stop> {
        self.tx.read(self.ctx, addr).map_err(|a| self.stop(a))
    }

    fn write(&mut self, addr: Addr, value: u64) -> Result<(), Stop> {
        self.tx
            .write(self.ctx, addr, value)
            .map_err(|a| self.stop(a))
    }

    fn alloc(&mut self, words: u64) -> Result<Addr, Stop> {
        self.tx.alloc(self.ctx, words).map_err(|a| self.stop(a))
    }

    fn work(&mut self, cycles: u64) -> Result<(), Stop> {
        self.tx.work(self.ctx, cycles).map_err(|a| self.stop(a))
    }
}

impl TmBackend for SimBackend<'_> {
    fn transaction<R>(&mut self, mut body: impl FnMut(&mut dyn TxScope) -> Result<R, Stop>) -> R {
        self.t.transaction(self.ctx, |tx, ctx| {
            let mut scope = SimScope {
                tx,
                ctx,
                abort: None,
            };
            match body(&mut scope) {
                Ok(r) => Ok(r),
                Err(Stop) => Err(scope.abort.take().expect(
                    "body returned a hand-made Stop: Stop tokens must originate \
                     from a scope call so the driver knows the real abort reason",
                )),
            }
        })
    }

    fn plain_load(&mut self, addr: Addr) -> u64 {
        nont_load(self.ctx, addr)
    }

    fn plain_store(&mut self, addr: Addr, value: u64) {
        nont_store(self.ctx, addr, value);
    }

    fn compute(&mut self, cycles: u64) {
        self.ctx.work(cycles).plain("backend compute");
    }

    fn barrier(&mut self) {
        Barrier::wait(self.ctx);
    }

    fn tid(&self) -> usize {
        self.tid
    }

    fn threads(&self) -> usize {
        self.threads
    }
}
