//! The workload world type: the combined TM state plus a phase barrier.

use ufotm_core::{HasTm, TmShared};
use ufotm_machine::{Addr, PlainAccess};
use ufotm_sim::Ctx;
use ufotm_tl2::{HasTl2, Tl2Shared};
use ufotm_ustm::{HasUstm, UstmShared};

/// The shared world for STAMP runs: TM state plus a sense-reversing barrier
/// used between workload phases (e.g. kmeans iterations).
#[derive(Debug)]
pub struct StampWorld {
    /// The combined TM shared state.
    pub tm: TmShared,
    /// The phase barrier.
    pub barrier: Barrier,
}

impl HasTm for StampWorld {
    fn tm(&mut self) -> &mut TmShared {
        &mut self.tm
    }
}

impl HasUstm for StampWorld {
    fn ustm(&mut self) -> &mut UstmShared {
        &mut self.tm.ustm
    }
}

impl HasTl2 for StampWorld {
    fn tl2(&mut self) -> &mut Tl2Shared {
        &mut self.tm.tl2
    }
}

/// A sense-reversing spin barrier whose arrival counter lives at a
/// simulated address (so barrier polling costs cycles and coherence
/// traffic, like the pthread barriers in the paper's benchmarks).
#[derive(Clone, Copy, Debug)]
pub struct Barrier {
    addr: Addr,
    parties: usize,
    arrived: usize,
    sense: bool,
}

impl Barrier {
    /// Creates a barrier for `parties` threads with its counter at `addr`
    /// (reserve one line).
    #[must_use]
    pub fn new(addr: Addr, parties: usize) -> Self {
        Barrier {
            addr,
            parties,
            arrived: 0,
            sense: false,
        }
    }

    /// Number of participating threads.
    #[must_use]
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks (in simulated time) until all parties arrive.
    pub fn wait(ctx: &mut Ctx<StampWorld>) {
        let cpu = ctx.cpu();
        let my_sense = ctx.with(|w| {
            let b = &mut w.shared.barrier;
            let my = !b.sense;
            b.arrived += 1;
            let (addr, arrived, parties) = (b.addr, b.arrived, b.parties);
            if arrived == parties {
                b.arrived = 0;
                b.sense = my;
            }
            w.machine
                .store(cpu, addr, arrived as u64)
                .plain("barrier store");
            my
        });
        loop {
            let released = ctx.with(|w| {
                let (addr, sense) = (w.shared.barrier.addr, w.shared.barrier.sense);
                w.machine.load(cpu, addr).plain("barrier load");
                sense == my_sense
            });
            if released {
                return;
            }
            ctx.stall(60).plain("barrier spin");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;
    use ufotm_machine::{Machine, MachineConfig};
    use ufotm_sim::{Sim, ThreadFn};

    #[test]
    fn barrier_synchronizes_phases() {
        let cfg = MachineConfig::table4(4);
        let tm = TmShared::standard(SystemKind::Sequential, &cfg);
        let world = StampWorld {
            tm,
            barrier: Barrier::new(Addr(1024), 4),
        };
        let machine = Machine::new(cfg);
        let bodies: Vec<ThreadFn<StampWorld>> = (0..4)
            .map(|i| -> ThreadFn<StampWorld> {
                Box::new(move |ctx| {
                    // Stagger arrivals; everyone must leave together.
                    ctx.work(100 * (i as u64 + 1)).unwrap();
                    Barrier::wait(ctx);
                    let t = ctx.now();
                    assert!(t >= 400, "thread {i} left the barrier early at {t}");
                    Barrier::wait(ctx);
                })
            })
            .collect();
        let r = Sim::new(machine, world).run(bodies);
        assert!(r.makespan >= 400);
    }
}
