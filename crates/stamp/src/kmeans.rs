#![allow(clippy::needless_range_loop)] // index loops mirror the math

//! kmeans: clustering with small, hot transactions (paper §5.1).
//!
//! Each thread assigns its chunk of points to the nearest cluster centre
//! (non-transactional reads + compute), then transactionally adds the point
//! into the cluster's accumulator — one small transaction per point, all
//! threads hammering `K` accumulator lines. High contention = few clusters.
//! Between iterations, thread 0 recomputes the centres at a barrier.

use ufotm_core::{nont_load, nont_store};
use ufotm_machine::{Addr, Machine, PlainAccess, LINE_WORDS};

use crate::harness::{chunk, run_workload, RunOutcome, RunSpec, STATIC_BASE};
use crate::world::{Barrier, StampWorld};

/// kmeans parameters.
#[derive(Clone, Copy, Debug)]
pub struct KmeansParams {
    /// Number of points.
    pub points: usize,
    /// Dimensions per point.
    pub dims: usize,
    /// Number of clusters (fewer = more contention).
    pub clusters: usize,
    /// Assignment iterations.
    pub iterations: usize,
}

impl KmeansParams {
    /// The paper's high-contention configuration, scaled down.
    #[must_use]
    pub fn high_contention() -> Self {
        KmeansParams {
            points: 768,
            dims: 4,
            clusters: 4,
            iterations: 2,
        }
    }

    /// The paper's low-contention configuration, scaled down.
    #[must_use]
    pub fn low_contention() -> Self {
        KmeansParams {
            points: 768,
            dims: 4,
            clusters: 32,
            iterations: 2,
        }
    }

    fn points_base(&self) -> Addr {
        STATIC_BASE
    }

    fn point(&self, i: usize, d: usize) -> Addr {
        self.points_base().add_words((i * self.dims + d) as u64)
    }

    fn centers_base(&self) -> Addr {
        let end = self
            .points_base()
            .add_words((self.points * self.dims) as u64);
        Addr(end.0.next_multiple_of(64))
    }

    fn center(&self, k: usize, d: usize) -> Addr {
        // One line per centre.
        self.centers_base()
            .add_words(k as u64 * LINE_WORDS + d as u64)
    }

    fn accs_base(&self) -> Addr {
        Addr(self.centers_base().0 + self.clusters as u64 * 64)
    }

    /// Accumulator layout: word 0 = count, words 1..=D = per-dim sums.
    fn acc(&self, k: usize, field: usize) -> Addr {
        self.accs_base()
            .add_words(k as u64 * LINE_WORDS + field as u64)
    }
}

/// Deterministic point generator (xorshift on the seed).
fn coord(seed: u64, i: usize, d: usize) -> u64 {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (d as u64) << 17;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x % 1024
}

fn nearest(point: &[u64], centers: &[Vec<u64>]) -> usize {
    let mut best = 0usize;
    let mut best_d = u64::MAX;
    for (k, c) in centers.iter().enumerate() {
        let d: u64 = point
            .iter()
            .zip(c.iter())
            .map(|(&p, &q)| {
                let diff = p.abs_diff(q);
                diff * diff
            })
            .sum();
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// Runs kmeans under `spec` and returns the collected numbers.
///
/// # Panics
///
/// Panics if verification fails (accumulators must match a host-side
/// recomputation exactly — integer arithmetic makes the result independent
/// of commit order).
pub fn run(spec: &RunSpec, params: &KmeansParams) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;
    let iterations = p.iterations;

    let setup = move |m: &mut Machine, _w: &mut StampWorld| {
        for i in 0..p.points {
            for d in 0..p.dims {
                m.poke(p.point(i, d), coord(seed, i, d));
            }
        }
        for k in 0..p.clusters {
            for d in 0..p.dims {
                // Initial centres = the first K points.
                m.poke(p.center(k, d), coord(seed, k, d));
            }
        }
    };

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let (start, end) = chunk(p.points, threads, tid);
            for iter in 0..iterations {
                for i in start..end {
                    // Plain reads of the point and all centres, plus the
                    // distance computation.
                    let mut pt = vec![0u64; p.dims];
                    for (d, v) in pt.iter_mut().enumerate() {
                        *v = nont_load(ctx, p.point(i, d));
                    }
                    let mut centers = vec![vec![0u64; p.dims]; p.clusters];
                    for (k, c) in centers.iter_mut().enumerate() {
                        for (d, v) in c.iter_mut().enumerate() {
                            *v = nont_load(ctx, p.center(k, d));
                        }
                    }
                    ctx.work((p.clusters * p.dims * 3) as u64)
                        .plain("distance compute");
                    let k = nearest(&pt, &centers);
                    // The transaction: fold the point into accumulator k.
                    let pt2 = pt.clone();
                    t.transaction(ctx, |tx, ctx| {
                        let c = tx.read(ctx, p.acc(k, 0))?;
                        tx.write(ctx, p.acc(k, 0), c + 1)?;
                        for (d, v) in pt2.iter().enumerate() {
                            let s = tx.read(ctx, p.acc(k, d + 1))?;
                            tx.write(ctx, p.acc(k, d + 1), s + v)?;
                        }
                        Ok(())
                    });
                }
                Barrier::wait(ctx);
                if tid == 0 && iter + 1 < iterations {
                    // Recompute centres and reset accumulators for the next
                    // pass (plain accesses: everyone else is at the barrier).
                    for k in 0..p.clusters {
                        let count = nont_load(ctx, p.acc(k, 0));
                        // Not `checked_div`: the accumulator loads must be
                        // skipped entirely for an empty cluster, or the
                        // simulated access count (and thus cycle totals)
                        // would change.
                        #[allow(clippy::manual_checked_ops)]
                        if count > 0 {
                            for d in 0..p.dims {
                                let sum = nont_load(ctx, p.acc(k, d + 1));
                                nont_store(ctx, p.center(k, d), sum / count);
                            }
                        }
                        nont_store(ctx, p.acc(k, 0), 0);
                        for d in 0..p.dims {
                            nont_store(ctx, p.acc(k, d + 1), 0);
                        }
                    }
                }
                Barrier::wait(ctx);
            }
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        // Host-side replay: same integer arithmetic, same tie-breaks.
        let mut centers: Vec<Vec<u64>> = (0..p.clusters)
            .map(|k| (0..p.dims).map(|d| coord(seed, k, d)).collect())
            .collect();
        let mut counts = vec![0u64; p.clusters];
        let mut sums = vec![vec![0u64; p.dims]; p.clusters];
        for iter in 0..iterations {
            counts.iter_mut().for_each(|c| *c = 0);
            sums.iter_mut()
                .for_each(|s| s.iter_mut().for_each(|v| *v = 0));
            for i in 0..p.points {
                let pt: Vec<u64> = (0..p.dims).map(|d| coord(seed, i, d)).collect();
                let k = nearest(&pt, &centers);
                counts[k] += 1;
                for (d, v) in pt.iter().enumerate() {
                    sums[k][d] += v;
                }
            }
            if iter + 1 < iterations {
                for k in 0..p.clusters {
                    for d in 0..p.dims {
                        if let Some(c) = sums[k][d].checked_div(counts[k]) {
                            centers[k][d] = c;
                        }
                    }
                }
            }
        }
        let total: u64 = counts.iter().sum();
        assert_eq!(total, p.points as u64);
        for k in 0..p.clusters {
            assert_eq!(
                m.peek(p.acc(k, 0)),
                counts[k],
                "cluster {k} count diverged (lost transactional updates?)"
            );
            for d in 0..p.dims {
                assert_eq!(
                    m.peek(p.acc(k, d + 1)),
                    sums[k][d],
                    "cluster {k} dim {d} sum"
                );
            }
        }
    };

    run_workload(spec, setup, make_body, verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    fn tiny() -> KmeansParams {
        KmeansParams {
            points: 96,
            dims: 2,
            clusters: 4,
            iterations: 2,
        }
    }

    #[test]
    fn kmeans_verifies_on_sequential() {
        let spec = RunSpec::new(SystemKind::Sequential, 1);
        let out = run(&spec, &tiny());
        assert_eq!(out.total_commits(), 96 * 2);
    }

    #[test]
    fn kmeans_verifies_on_ufo_hybrid() {
        let spec = RunSpec::new(SystemKind::UfoHybrid, 4);
        let out = run(&spec, &tiny());
        assert_eq!(out.total_commits(), 96 * 2);
        assert!(out.hw_commits > 0, "kmeans txns should run in hardware");
    }

    #[test]
    fn kmeans_verifies_on_stms() {
        for kind in [SystemKind::UstmStrong, SystemKind::Tl2] {
            let spec = RunSpec::new(kind, 2);
            let out = run(&spec, &tiny());
            assert_eq!(out.total_commits(), 96 * 2, "{kind}");
        }
    }

    #[test]
    fn parallel_beats_sequential_in_simulated_time() {
        let p = tiny();
        let seq = run(&RunSpec::new(SystemKind::Sequential, 1), &p);
        let par = run(&RunSpec::new(SystemKind::UnboundedHtm, 4), &p);
        assert!(
            par.makespan < seq.makespan,
            "4-thread HTM ({}) should beat sequential ({})",
            par.makespan,
            seq.makespan
        );
    }
}
