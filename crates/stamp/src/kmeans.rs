#![allow(clippy::needless_range_loop)] // index loops mirror the math

//! kmeans: clustering with small, hot transactions (paper §5.1).
//!
//! Each thread assigns its chunk of points to the nearest cluster centre
//! (non-transactional reads + compute), then transactionally adds the point
//! into the cluster's accumulator — one small transaction per point, all
//! threads hammering `K` accumulator lines. High contention = few clusters.
//! Between iterations, thread 0 recomputes the centres at a barrier.
//!
//! The workload is written once against [`TmBackend`] and runs on both
//! substrates: [`run`] on the simulated machine (cycle-charged,
//! deterministic), [`run_native`] on host atomics (wall-clock ops/sec).

use ufotm_core::TmBackend;
use ufotm_machine::{Addr, Machine, LINE_WORDS};

use crate::backend::SimBackend;
use crate::harness::{
    chunk, native_heap, native_hybrid_world, run_native_hybrid_workload, run_native_workload,
    run_workload, NativeOutcome, RunOutcome, RunSpec, STATIC_BASE,
};
use crate::world::StampWorld;

/// kmeans parameters.
#[derive(Clone, Copy, Debug)]
pub struct KmeansParams {
    /// Number of points.
    pub points: usize,
    /// Dimensions per point.
    pub dims: usize,
    /// Number of clusters (fewer = more contention).
    pub clusters: usize,
    /// Assignment iterations.
    pub iterations: usize,
}

impl KmeansParams {
    /// The paper's high-contention configuration, scaled down.
    #[must_use]
    pub fn high_contention() -> Self {
        KmeansParams {
            points: 768,
            dims: 4,
            clusters: 4,
            iterations: 2,
        }
    }

    /// The paper's low-contention configuration, scaled down.
    #[must_use]
    pub fn low_contention() -> Self {
        KmeansParams {
            points: 768,
            dims: 4,
            clusters: 32,
            iterations: 2,
        }
    }

    fn points_base(&self) -> Addr {
        STATIC_BASE
    }

    fn point(&self, i: usize, d: usize) -> Addr {
        self.points_base().add_words((i * self.dims + d) as u64)
    }

    fn centers_base(&self) -> Addr {
        let end = self
            .points_base()
            .add_words((self.points * self.dims) as u64);
        Addr(end.0.next_multiple_of(64))
    }

    fn center(&self, k: usize, d: usize) -> Addr {
        // One line per centre.
        self.centers_base()
            .add_words(k as u64 * LINE_WORDS + d as u64)
    }

    fn accs_base(&self) -> Addr {
        Addr(self.centers_base().0 + self.clusters as u64 * 64)
    }

    /// Accumulator layout: word 0 = count, words 1..=D = per-dim sums.
    fn acc(&self, k: usize, field: usize) -> Addr {
        self.accs_base()
            .add_words(k as u64 * LINE_WORDS + field as u64)
    }

    /// One past the last static byte (for native heap sizing).
    fn static_end(&self) -> Addr {
        Addr(self.accs_base().0 + self.clusters as u64 * 64)
    }
}

/// Deterministic point generator (xorshift on the seed).
fn coord(seed: u64, i: usize, d: usize) -> u64 {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (d as u64) << 17;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x % 1024
}

fn nearest(point: &[u64], centers: &[Vec<u64>]) -> usize {
    let mut best = 0usize;
    let mut best_d = u64::MAX;
    for (k, c) in centers.iter().enumerate() {
        let d: u64 = point
            .iter()
            .zip(c.iter())
            .map(|(&p, &q)| {
                let diff = p.abs_diff(q);
                diff * diff
            })
            .sum();
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// Populates points and initial centres (= the first K points) through
/// whatever plain-store the substrate provides.
fn setup_data(p: KmeansParams, seed: u64, poke: &mut dyn FnMut(Addr, u64)) {
    for i in 0..p.points {
        for d in 0..p.dims {
            poke(p.point(i, d), coord(seed, i, d));
        }
    }
    for k in 0..p.clusters {
        for d in 0..p.dims {
            poke(p.center(k, d), coord(seed, k, d));
        }
    }
}

/// One thread's whole run, written once against the backend traits.
fn assign_body<B: TmBackend>(b: &mut B, p: KmeansParams) {
    let (start, end) = chunk(p.points, b.threads(), b.tid());
    for iter in 0..p.iterations {
        for i in start..end {
            // Plain reads of the point and all centres, plus the
            // distance computation.
            let mut pt = vec![0u64; p.dims];
            for (d, v) in pt.iter_mut().enumerate() {
                *v = b.plain_load(p.point(i, d));
            }
            let mut centers = vec![vec![0u64; p.dims]; p.clusters];
            for (k, c) in centers.iter_mut().enumerate() {
                for (d, v) in c.iter_mut().enumerate() {
                    *v = b.plain_load(p.center(k, d));
                }
            }
            b.compute((p.clusters * p.dims * 3) as u64);
            let k = nearest(&pt, &centers);
            // The transaction: fold the point into accumulator k.
            b.transaction(|tx| {
                let c = tx.read(p.acc(k, 0))?;
                tx.write(p.acc(k, 0), c + 1)?;
                for (d, v) in pt.iter().enumerate() {
                    let s = tx.read(p.acc(k, d + 1))?;
                    tx.write(p.acc(k, d + 1), s + v)?;
                }
                Ok(())
            });
        }
        b.barrier();
        if b.tid() == 0 && iter + 1 < p.iterations {
            // Recompute centres and reset accumulators for the next
            // pass (plain accesses: everyone else is at the barrier).
            for k in 0..p.clusters {
                let count = b.plain_load(p.acc(k, 0));
                // Not `checked_div`: the accumulator loads must be
                // skipped entirely for an empty cluster, or the
                // simulated access count (and thus cycle totals)
                // would change.
                #[allow(clippy::manual_checked_ops)]
                if count > 0 {
                    for d in 0..p.dims {
                        let sum = b.plain_load(p.acc(k, d + 1));
                        b.plain_store(p.center(k, d), sum / count);
                    }
                }
                b.plain_store(p.acc(k, 0), 0);
                for d in 0..p.dims {
                    b.plain_store(p.acc(k, d + 1), 0);
                }
            }
        }
        b.barrier();
    }
}

/// Host-side replay of the final accumulators: same integer arithmetic,
/// same tie-breaks — exact on both substrates regardless of commit order.
fn check_final(p: KmeansParams, seed: u64, peek: &dyn Fn(Addr) -> u64) {
    let mut centers: Vec<Vec<u64>> = (0..p.clusters)
        .map(|k| (0..p.dims).map(|d| coord(seed, k, d)).collect())
        .collect();
    let mut counts = vec![0u64; p.clusters];
    let mut sums = vec![vec![0u64; p.dims]; p.clusters];
    for iter in 0..p.iterations {
        counts.iter_mut().for_each(|c| *c = 0);
        sums.iter_mut()
            .for_each(|s| s.iter_mut().for_each(|v| *v = 0));
        for i in 0..p.points {
            let pt: Vec<u64> = (0..p.dims).map(|d| coord(seed, i, d)).collect();
            let k = nearest(&pt, &centers);
            counts[k] += 1;
            for (d, v) in pt.iter().enumerate() {
                sums[k][d] += v;
            }
        }
        if iter + 1 < p.iterations {
            for k in 0..p.clusters {
                for d in 0..p.dims {
                    if let Some(c) = sums[k][d].checked_div(counts[k]) {
                        centers[k][d] = c;
                    }
                }
            }
        }
    }
    let total: u64 = counts.iter().sum();
    assert_eq!(total, p.points as u64);
    for k in 0..p.clusters {
        assert_eq!(
            peek(p.acc(k, 0)),
            counts[k],
            "cluster {k} count diverged (lost transactional updates?)"
        );
        for d in 0..p.dims {
            assert_eq!(peek(p.acc(k, d + 1)), sums[k][d], "cluster {k} dim {d} sum");
        }
    }
}

/// Runs kmeans under `spec` on the simulated machine and returns the
/// collected numbers.
///
/// # Panics
///
/// Panics if verification fails (accumulators must match a host-side
/// recomputation exactly — integer arithmetic makes the result independent
/// of commit order).
pub fn run(spec: &RunSpec, params: &KmeansParams) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;

    let setup = move |m: &mut Machine, _w: &mut StampWorld| {
        setup_data(p, seed, &mut |a, v| m.poke(a, v));
    };

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let mut b = SimBackend::new(t, ctx, tid, threads);
            assign_body(&mut b, p);
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        check_final(p, seed, &|a| m.peek(a));
    };

    run_workload(spec, setup, make_body, verify)
}

/// Runs kmeans on a native backend — host-atomics TL2 or the failover
/// hybrid, per `spec.backend`: the *same* `assign_body` on real OS
/// threads, verified by the same host replay.
///
/// # Panics
///
/// Panics if verification fails or `spec.backend` is simulated.
pub fn run_native(spec: &RunSpec, params: &KmeansParams) -> NativeOutcome {
    let p = *params;
    let seed = spec.seed;
    let ops = (p.points * p.iterations) as u64;
    if spec.backend == ufotm_core::BackendKind::NativeHybrid {
        let h = native_hybrid_world(p.static_end(), 0, spec.threads);
        run_native_hybrid_workload(
            spec,
            &h,
            |t| setup_data(p, seed, &mut |a, v| t.poke(a, v)),
            |th| assign_body(th, p),
            |t| check_final(p, seed, &|a| t.peek(a)),
            ops,
        )
    } else {
        let heap = native_heap(p.static_end(), 0);
        run_native_workload(
            spec,
            &heap,
            |h| setup_data(p, seed, &mut |a, v| h.poke(a, v)),
            |th| assign_body(th, p),
            |h| check_final(p, seed, &|a| h.peek(a)),
            ops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    fn tiny() -> KmeansParams {
        KmeansParams {
            points: 96,
            dims: 2,
            clusters: 4,
            iterations: 2,
        }
    }

    #[test]
    fn kmeans_verifies_on_sequential() {
        let spec = RunSpec::new(SystemKind::Sequential, 1);
        let out = run(&spec, &tiny());
        assert_eq!(out.total_commits(), 96 * 2);
    }

    #[test]
    fn kmeans_verifies_on_ufo_hybrid() {
        let spec = RunSpec::new(SystemKind::UfoHybrid, 4);
        let out = run(&spec, &tiny());
        assert_eq!(out.total_commits(), 96 * 2);
        assert!(out.hw_commits > 0, "kmeans txns should run in hardware");
    }

    #[test]
    fn kmeans_verifies_on_stms() {
        for kind in [SystemKind::UstmStrong, SystemKind::Tl2] {
            let spec = RunSpec::new(kind, 2);
            let out = run(&spec, &tiny());
            assert_eq!(out.total_commits(), 96 * 2, "{kind}");
        }
    }

    #[test]
    fn parallel_beats_sequential_in_simulated_time() {
        let p = tiny();
        let seq = run(&RunSpec::new(SystemKind::Sequential, 1), &p);
        let par = run(&RunSpec::new(SystemKind::UnboundedHtm, 4), &p);
        assert!(
            par.makespan < seq.makespan,
            "4-thread HTM ({}) should beat sequential ({})",
            par.makespan,
            seq.makespan
        );
    }

    #[test]
    fn kmeans_verifies_on_native_threads() {
        let out = run_native(&RunSpec::native(4), &tiny());
        assert_eq!(out.ops, 96 * 2);
        assert_eq!(out.stats.commits, 96 * 2, "one commit per assignment");
    }

    #[test]
    fn kmeans_verifies_on_native_hybrid() {
        let out = run_native(&RunSpec::native_hybrid(4), &tiny());
        assert_eq!(out.ops, 96 * 2);
        assert_eq!(
            out.total_commits(),
            96 * 2,
            "one commit per assignment across both paths"
        );
    }
}
