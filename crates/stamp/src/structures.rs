//! Transactional data structures, written once against [`TxScope`].
//!
//! Nodes are heap-allocated (one 8-word node per cache line) and all
//! pointer/field accesses go through the scope, so traversals generate
//! realistic read sets — a tree lookup reads one line per level, and a
//! sorted-list insertion reads its whole prefix, exactly the footprint
//! shapes that drive the paper's vacation and genome results.
//!
//! Because the structures only see `&mut dyn TxScope`, the same lookup
//! and insert code runs on the simulated machine (via `SimBackend`,
//! cycle-charged and deterministic) and on the native backends (host
//! atomics, real threads). Host-side verification walkers take a `peek`
//! closure for the same reason: `|a| machine.peek(a)` on the simulator,
//! `|a| heap.peek(a)` on the native heap.
//!
//! A null pointer is encoded as 0 (neither heap starts at address 0).

use ufotm_core::{Stop, TxScope};
use ufotm_machine::Addr;

/// Node layout: one 8-word line.
const F_KEY: u64 = 0;
const F_LEFT: u64 = 1;
const F_RIGHT: u64 = 2;
const F_NEXT: u64 = 1; // list nodes reuse the layout
/// First of four value words.
const F_VAL: u64 = 3;
const NODE_WORDS: u64 = 8;

fn field(node: Addr, f: u64) -> Addr {
    node.add_words(f)
}

/// A host-side (non-transactional) word reader for verification walks.
pub type Peek<'a> = dyn Fn(Addr) -> u64 + 'a;

/// An unbalanced binary search tree keyed by `u64`, with up to four value
/// words per node. The root pointer lives at a fixed address.
#[derive(Clone, Copy, Debug)]
pub struct BstMap {
    root: Addr,
}

impl BstMap {
    /// Creates a handle for a tree whose root pointer cell is at `root`
    /// (reserve one word; must be zero-initialized).
    #[must_use]
    pub fn new(root: Addr) -> Self {
        BstMap { root }
    }

    /// The address of the root pointer cell (for host-side
    /// setup/verification code).
    #[must_use]
    pub fn root_cell(&self) -> Addr {
        self.root
    }

    /// Transactionally looks up `key`, returning the node address.
    ///
    /// # Errors
    ///
    /// Propagates the scope's abort token.
    pub fn lookup(&self, tx: &mut dyn TxScope, key: u64) -> Result<Option<Addr>, Stop> {
        let mut cur = tx.read(self.root)?;
        while cur != 0 {
            let node = Addr(cur);
            let k = tx.read(field(node, F_KEY))?;
            if k == key {
                return Ok(Some(node));
            }
            let next_field = if key < k { F_LEFT } else { F_RIGHT };
            cur = tx.read(field(node, next_field))?;
        }
        Ok(None)
    }

    /// Transactionally inserts `key` with up to four value words. Returns
    /// `false` (and writes nothing) if the key already exists.
    ///
    /// # Errors
    ///
    /// Propagates the scope's abort token.
    ///
    /// # Panics
    ///
    /// Panics if more than four value words are supplied.
    pub fn insert(&self, tx: &mut dyn TxScope, key: u64, values: &[u64]) -> Result<bool, Stop> {
        assert!(values.len() <= 4, "at most four value words per node");
        let mut parent_field = self.root;
        let mut cur = tx.read(self.root)?;
        while cur != 0 {
            let node = Addr(cur);
            let k = tx.read(field(node, F_KEY))?;
            if k == key {
                return Ok(false);
            }
            let next_field = if key < k { F_LEFT } else { F_RIGHT };
            parent_field = field(node, next_field);
            cur = tx.read(parent_field)?;
        }
        let node = tx.alloc(NODE_WORDS)?;
        tx.write(field(node, F_KEY), key)?;
        tx.write(field(node, F_LEFT), 0)?;
        tx.write(field(node, F_RIGHT), 0)?;
        for (i, v) in values.iter().enumerate() {
            tx.write(field(node, F_VAL + i as u64), *v)?;
        }
        tx.write(parent_field, node.0)?;
        Ok(true)
    }

    /// Reads value word `i` of `node`.
    ///
    /// # Errors
    ///
    /// Propagates the scope's abort token.
    pub fn value(&self, tx: &mut dyn TxScope, node: Addr, i: u64) -> Result<u64, Stop> {
        tx.read(field(node, F_VAL + i))
    }

    /// Writes value word `i` of `node`.
    ///
    /// # Errors
    ///
    /// Propagates the scope's abort token.
    pub fn set_value(&self, tx: &mut dyn TxScope, node: Addr, i: u64, v: u64) -> Result<(), Stop> {
        tx.write(field(node, F_VAL + i), v)
    }

    /// Host-side (non-transactional) traversal for verification: calls `f`
    /// with `(key, [v0..v3])` for every node, in key order.
    pub fn peek_each(&self, peek: &Peek<'_>, mut f: impl FnMut(u64, [u64; 4])) {
        fn rec(peek: &Peek<'_>, cur: u64, f: &mut impl FnMut(u64, [u64; 4])) {
            if cur == 0 {
                return;
            }
            let node = Addr(cur);
            rec(peek, peek(field(node, F_LEFT)), f);
            let key = peek(field(node, F_KEY));
            let vals = [
                peek(field(node, F_VAL)),
                peek(field(node, F_VAL + 1)),
                peek(field(node, F_VAL + 2)),
                peek(field(node, F_VAL + 3)),
            ];
            f(key, vals);
            rec(peek, peek(field(node, F_RIGHT)), f);
        }
        rec(peek, peek(self.root), &mut f);
    }

    /// Host-side insert for setup phases (no transactions, no cycle
    /// charges): walks with `peek`, allocates a node with `alloc`, and
    /// publishes it with `poke`. No-op if `key` is already present.
    pub fn host_insert(
        &self,
        peek: &Peek<'_>,
        poke: &mut dyn FnMut(Addr, u64),
        alloc: &mut dyn FnMut(u64) -> Addr,
        key: u64,
        values: &[u64; 4],
    ) {
        let mut parent_field = self.root;
        let mut cur = peek(self.root);
        while cur != 0 {
            let node = Addr(cur);
            let k = peek(field(node, F_KEY));
            if k == key {
                return; // already present
            }
            let f = if key < k { F_LEFT } else { F_RIGHT };
            parent_field = field(node, f);
            cur = peek(parent_field);
        }
        let node = alloc(NODE_WORDS);
        poke(field(node, F_KEY), key);
        poke(field(node, F_LEFT), 0);
        poke(field(node, F_RIGHT), 0);
        for (i, v) in values.iter().enumerate() {
            poke(field(node, F_VAL + i as u64), *v);
        }
        poke(parent_field, node.0);
    }
}

/// A sorted singly-linked list with unique keys. Insertion reads the whole
/// prefix up to the insertion point — genome's contention pattern.
#[derive(Clone, Copy, Debug)]
pub struct SortedList {
    head: Addr,
}

impl SortedList {
    /// Creates a handle for a list whose head pointer cell is at `head`
    /// (reserve one word; must be zero-initialized).
    #[must_use]
    pub fn new(head: Addr) -> Self {
        SortedList { head }
    }

    /// Transactionally inserts `key` (with one value word), keeping the
    /// list sorted. Returns `false` if the key is already present.
    ///
    /// # Errors
    ///
    /// Propagates the scope's abort token.
    pub fn insert(&self, tx: &mut dyn TxScope, key: u64, value: u64) -> Result<bool, Stop> {
        let mut prev_field = self.head;
        let mut cur = tx.read(self.head)?;
        while cur != 0 {
            let node = Addr(cur);
            let k = tx.read(field(node, F_KEY))?;
            if k == key {
                return Ok(false);
            }
            if k > key {
                break;
            }
            prev_field = field(node, F_NEXT);
            cur = tx.read(prev_field)?;
        }
        let node = tx.alloc(NODE_WORDS)?;
        tx.write(field(node, F_KEY), key)?;
        tx.write(field(node, F_NEXT), cur)?;
        tx.write(field(node, F_VAL), value)?;
        tx.write(prev_field, node.0)?;
        Ok(true)
    }

    /// Host-side traversal for verification: yields keys in list order.
    #[must_use]
    pub fn peek_keys(&self, peek: &Peek<'_>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = peek(self.head);
        while cur != 0 {
            let node = Addr(cur);
            out.push(peek(field(node, F_KEY)));
            cur = peek(field(node, F_NEXT));
        }
        out
    }
}

/// A fixed-bucket chained hash set of `u64` keys. The bucket array lives in
/// a static region; chain nodes come from the heap.
#[derive(Clone, Copy, Debug)]
pub struct HashSet {
    buckets: Addr,
    bucket_count: u64,
}

impl HashSet {
    /// Creates a handle for a set whose bucket array (one word per bucket,
    /// zero-initialized) starts at `buckets`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is not a power of two.
    #[must_use]
    pub fn new(buckets: Addr, bucket_count: u64) -> Self {
        assert!(bucket_count.is_power_of_two());
        HashSet {
            buckets,
            bucket_count,
        }
    }

    fn bucket_of(&self, key: u64) -> Addr {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        self.buckets.add_words(h & (self.bucket_count - 1))
    }

    /// Transactionally tests membership.
    ///
    /// # Errors
    ///
    /// Propagates the scope's abort token.
    pub fn contains(&self, tx: &mut dyn TxScope, key: u64) -> Result<bool, Stop> {
        let bucket = self.bucket_of(key);
        let mut cur = tx.read(bucket)?;
        while cur != 0 {
            let node = Addr(cur);
            if tx.read(field(node, F_KEY))? == key {
                return Ok(true);
            }
            cur = tx.read(field(node, F_NEXT))?;
        }
        Ok(false)
    }

    /// Transactionally inserts `key`; returns `false` if already present.
    ///
    /// # Errors
    ///
    /// Propagates the scope's abort token.
    pub fn insert(&self, tx: &mut dyn TxScope, key: u64) -> Result<bool, Stop> {
        let bucket = self.bucket_of(key);
        let mut cur = tx.read(bucket)?;
        let head = cur;
        while cur != 0 {
            let node = Addr(cur);
            if tx.read(field(node, F_KEY))? == key {
                return Ok(false);
            }
            cur = tx.read(field(node, F_NEXT))?;
        }
        let node = tx.alloc(NODE_WORDS)?;
        tx.write(field(node, F_KEY), key)?;
        tx.write(field(node, F_NEXT), head)?;
        tx.write(bucket, node.0)?;
        Ok(true)
    }

    /// Host-side scan for verification: all keys, unordered.
    #[must_use]
    pub fn peek_all(&self, peek: &Peek<'_>) -> Vec<u64> {
        let mut out = Vec::new();
        for b in 0..self.bucket_count {
            let mut cur = peek(self.buckets.add_words(b));
            while cur != 0 {
                let node = Addr(cur);
                out.push(peek(field(node, F_KEY)));
                cur = peek(field(node, F_NEXT));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::{SystemKind, TmBackend, TmShared, TmThread};
    use ufotm_machine::{Machine, MachineConfig};
    use ufotm_sim::{Sim, SimResult, ThreadFn};

    use crate::backend::SimBackend;
    use crate::world::{Barrier, StampWorld};

    /// Runs a single-threaded body against a fresh simulated backend and
    /// returns the final world.
    fn run_one(
        kind: SystemKind,
        body: impl FnOnce(&mut SimBackend<'_>) + Send + 'static,
    ) -> SimResult<StampWorld> {
        let cfg = MachineConfig::table4(1);
        let tm = TmShared::standard(kind, &cfg);
        let machine = Machine::new(cfg);
        let world = StampWorld {
            tm,
            barrier: Barrier::new(Addr(64), 1),
        };
        Sim::new(machine, world).run(vec![Box::new(move |ctx: &mut ufotm_sim::Ctx<StampWorld>| {
            let mut t = TmThread::new(kind, 0);
            t.install(ctx);
            let mut b = SimBackend::new(&mut t, ctx, 0, 1);
            body(&mut b);
        }) as ThreadFn<StampWorld>])
    }

    #[test]
    fn bst_insert_lookup_and_order() {
        let r = run_one(SystemKind::Sequential, |b| {
            let map = BstMap::new(Addr(4096));
            for key in [50u64, 20, 80, 10, 30, 70, 90] {
                let fresh = b.transaction(|tx| map.insert(tx, key, &[key * 2, 0, 0, 0]));
                assert!(fresh);
            }
            let dup = b.transaction(|tx| map.insert(tx, 30, &[1, 0, 0, 0]));
            assert!(!dup, "duplicate insert must be rejected");
            b.transaction(|tx| {
                let node = map.lookup(tx, 70)?.expect("70 present");
                assert_eq!(map.value(tx, node, 0)?, 140);
                map.set_value(tx, node, 0, 7)?;
                assert!(map.lookup(tx, 99)?.is_none());
                Ok(())
            });
        });
        let map = BstMap::new(Addr(4096));
        let mut seen = Vec::new();
        map.peek_each(&|a| r.machine.peek(a), |k, vals| seen.push((k, vals[0])));
        assert_eq!(
            seen,
            vec![
                (10, 20),
                (20, 40),
                (30, 60),
                (50, 100),
                (70, 7),
                (80, 160),
                (90, 180)
            ],
            "in-order traversal with updated value"
        );
    }

    #[test]
    fn bst_works_transactionally_on_the_hybrid() {
        let r = run_one(SystemKind::UfoHybrid, |b| {
            let map = BstMap::new(Addr(4096));
            for key in 0..20u64 {
                // Mixed order insertion via bit-reversal.
                let k = (key.reverse_bits() >> 59) ^ key;
                b.transaction(|tx| map.insert(tx, k, &[k, 0, 0, 0]));
            }
        });
        let map = BstMap::new(Addr(4096));
        let mut keys = Vec::new();
        map.peek_each(&|a| r.machine.peek(a), |k, _| keys.push(k));
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bst_host_insert_matches_transactional_layout() {
        let r = run_one(SystemKind::Sequential, |b| {
            let map = BstMap::new(Addr(4096));
            b.transaction(|tx| map.insert(tx, 10, &[1, 0, 0, 0]));
        });
        // A host-side insert into a detached tree, then lookups through
        // plain peeks must see the same field layout.
        let mut words = vec![0u64; 64];
        let map = BstMap::new(Addr(0));
        let mut next = 8u64; // word index of the next free node
        let mut poke = |a: Addr, v: u64| words[(a.0 / 8) as usize] = v;
        let mut alloc = |w: u64| {
            let at = Addr(next * 8);
            next += w;
            at
        };
        // Rust closures can't borrow `words` both ways at once, so stage
        // the walk manually: empty tree, single insert at the root cell.
        map.host_insert(&|_a| 0, &mut poke, &mut alloc, 42, &[7, 0, 0, 0]);
        assert_eq!(words[0], 64, "root points at the allocated node");
        assert_eq!(words[8], 42, "key word");
        assert_eq!(words[11], 7, "first value word");
        // And the transactional tree from the simulated run agrees on the
        // same offsets.
        let m = &r.machine;
        let root = m.peek(Addr(4096));
        assert_ne!(root, 0);
        assert_eq!(m.peek(Addr(root)), 10);
    }

    #[test]
    fn sorted_list_stays_sorted_and_unique() {
        let r = run_one(SystemKind::Sequential, |b| {
            let list = SortedList::new(Addr(4096));
            for key in [5u64, 3, 9, 1, 7, 3, 9] {
                b.transaction(|tx| list.insert(tx, key, key + 100));
            }
        });
        let list = SortedList::new(Addr(4096));
        assert_eq!(list.peek_keys(&|a| r.machine.peek(a)), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn hash_set_deduplicates_across_buckets() {
        let r = run_one(SystemKind::UstmStrong, |b| {
            let set = HashSet::new(Addr(4096), 8);
            let mut fresh_count = 0;
            for key in [1u64, 2, 3, 1, 2, 3, 4, 100, 1000, 100] {
                if b.transaction(|tx| set.insert(tx, key)) {
                    fresh_count += 1;
                }
            }
            assert_eq!(fresh_count, 6);
        });
        let set = HashSet::new(Addr(4096), 8);
        let mut all = set.peek_all(&|a| r.machine.peek(a));
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 100, 1000]);
    }

    #[test]
    fn structures_allocate_one_line_per_node() {
        let r = run_one(SystemKind::Sequential, |b| {
            let list = SortedList::new(Addr(4096));
            for key in 1..=4u64 {
                b.transaction(|tx| list.insert(tx, key, 0));
            }
        });
        assert_eq!(r.shared.tm.heap.live_allocations(), 4);
    }
}
