//! Transactional data structures over simulated memory.
//!
//! Nodes are heap-allocated (line-aligned, one node per cache line) and all
//! pointer/field accesses go through the [`Tx`] facade, so traversals
//! generate realistic read sets — a tree lookup reads one line per level,
//! and a sorted-list insertion reads its whole prefix, exactly the
//! footprint shapes that drive the paper's vacation and genome results.
//!
//! A null pointer is encoded as 0 (the heap never starts at address 0).

use ufotm_core::{Tx, TxAbort};
use ufotm_machine::Addr;
use ufotm_sim::Ctx;

use crate::world::StampWorld;

/// Node layout: one 8-word line.
const F_KEY: u64 = 0;
const F_LEFT: u64 = 1;
const F_RIGHT: u64 = 2;
const F_NEXT: u64 = 1; // list nodes reuse the layout
/// First of four value words.
const F_VAL: u64 = 3;
const NODE_WORDS: u64 = 8;

fn field(node: Addr, f: u64) -> Addr {
    node.add_words(f)
}

/// An unbalanced binary search tree keyed by `u64`, with up to four value
/// words per node. The root pointer lives at a fixed simulated address.
#[derive(Clone, Copy, Debug)]
pub struct BstMap {
    root: Addr,
}

impl BstMap {
    /// Creates a handle for a tree whose root pointer cell is at `root`
    /// (reserve one word; must be zero-initialized).
    #[must_use]
    pub fn new(root: Addr) -> Self {
        BstMap { root }
    }

    /// The simulated address of the root pointer cell (for host-side
    /// setup/verification code).
    #[must_use]
    pub fn root_cell(&self) -> Addr {
        self.root
    }

    /// Transactionally looks up `key`, returning the node address.
    ///
    /// # Errors
    ///
    /// Propagates transaction aborts.
    pub fn lookup(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut Ctx<StampWorld>,
        key: u64,
    ) -> Result<Option<Addr>, TxAbort> {
        let mut cur = tx.read(ctx, self.root)?;
        while cur != 0 {
            let node = Addr(cur);
            let k = tx.read(ctx, field(node, F_KEY))?;
            if k == key {
                return Ok(Some(node));
            }
            let next_field = if key < k { F_LEFT } else { F_RIGHT };
            cur = tx.read(ctx, field(node, next_field))?;
        }
        Ok(None)
    }

    /// Transactionally inserts `key` with up to four value words. Returns
    /// `false` (and writes nothing) if the key already exists.
    ///
    /// # Errors
    ///
    /// Propagates transaction aborts.
    ///
    /// # Panics
    ///
    /// Panics if more than four value words are supplied.
    pub fn insert(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut Ctx<StampWorld>,
        key: u64,
        values: &[u64],
    ) -> Result<bool, TxAbort> {
        assert!(values.len() <= 4, "at most four value words per node");
        let mut parent_field = self.root;
        let mut cur = tx.read(ctx, self.root)?;
        while cur != 0 {
            let node = Addr(cur);
            let k = tx.read(ctx, field(node, F_KEY))?;
            if k == key {
                return Ok(false);
            }
            let next_field = if key < k { F_LEFT } else { F_RIGHT };
            parent_field = field(node, next_field);
            cur = tx.read(ctx, parent_field)?;
        }
        let node = tx.alloc(ctx, NODE_WORDS)?;
        tx.write(ctx, field(node, F_KEY), key)?;
        tx.write(ctx, field(node, F_LEFT), 0)?;
        tx.write(ctx, field(node, F_RIGHT), 0)?;
        for (i, v) in values.iter().enumerate() {
            tx.write(ctx, field(node, F_VAL + i as u64), *v)?;
        }
        tx.write(ctx, parent_field, node.0)?;
        Ok(true)
    }

    /// Reads value word `i` of `node`.
    ///
    /// # Errors
    ///
    /// Propagates transaction aborts.
    pub fn value(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut Ctx<StampWorld>,
        node: Addr,
        i: u64,
    ) -> Result<u64, TxAbort> {
        tx.read(ctx, field(node, F_VAL + i))
    }

    /// Writes value word `i` of `node`.
    ///
    /// # Errors
    ///
    /// Propagates transaction aborts.
    pub fn set_value(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut Ctx<StampWorld>,
        node: Addr,
        i: u64,
        v: u64,
    ) -> Result<(), TxAbort> {
        tx.write(ctx, field(node, F_VAL + i), v)
    }

    /// Host-side (non-simulating) traversal for verification: calls `f`
    /// with `(key, [v0..v3])` for every node, in key order.
    pub fn peek_each(&self, m: &ufotm_machine::Machine, mut f: impl FnMut(u64, [u64; 4])) {
        fn rec(m: &ufotm_machine::Machine, cur: u64, f: &mut impl FnMut(u64, [u64; 4])) {
            if cur == 0 {
                return;
            }
            let node = Addr(cur);
            rec(m, m.peek(field(node, F_LEFT)), f);
            let key = m.peek(field(node, F_KEY));
            let vals = [
                m.peek(field(node, F_VAL)),
                m.peek(field(node, F_VAL + 1)),
                m.peek(field(node, F_VAL + 2)),
                m.peek(field(node, F_VAL + 3)),
            ];
            f(key, vals);
            rec(m, m.peek(field(node, F_RIGHT)), f);
        }
        rec(m, m.peek(self.root), &mut f);
    }
}

/// A sorted singly-linked list with unique keys. Insertion reads the whole
/// prefix up to the insertion point — genome's contention pattern.
#[derive(Clone, Copy, Debug)]
pub struct SortedList {
    head: Addr,
}

impl SortedList {
    /// Creates a handle for a list whose head pointer cell is at `head`
    /// (reserve one word; must be zero-initialized).
    #[must_use]
    pub fn new(head: Addr) -> Self {
        SortedList { head }
    }

    /// Transactionally inserts `key` (with one value word), keeping the
    /// list sorted. Returns `false` if the key is already present.
    ///
    /// # Errors
    ///
    /// Propagates transaction aborts.
    pub fn insert(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut Ctx<StampWorld>,
        key: u64,
        value: u64,
    ) -> Result<bool, TxAbort> {
        let mut prev_field = self.head;
        let mut cur = tx.read(ctx, self.head)?;
        while cur != 0 {
            let node = Addr(cur);
            let k = tx.read(ctx, field(node, F_KEY))?;
            if k == key {
                return Ok(false);
            }
            if k > key {
                break;
            }
            prev_field = field(node, F_NEXT);
            cur = tx.read(ctx, prev_field)?;
        }
        let node = tx.alloc(ctx, NODE_WORDS)?;
        tx.write(ctx, field(node, F_KEY), key)?;
        tx.write(ctx, field(node, F_NEXT), cur)?;
        tx.write(ctx, field(node, F_VAL), value)?;
        tx.write(ctx, prev_field, node.0)?;
        Ok(true)
    }

    /// Host-side traversal for verification: yields keys in list order.
    #[must_use]
    pub fn peek_keys(&self, m: &ufotm_machine::Machine) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = m.peek(self.head);
        while cur != 0 {
            let node = Addr(cur);
            out.push(m.peek(field(node, F_KEY)));
            cur = m.peek(field(node, F_NEXT));
        }
        out
    }
}

/// A fixed-bucket chained hash set of `u64` keys. The bucket array lives in
/// a static simulated region; chain nodes come from the heap.
#[derive(Clone, Copy, Debug)]
pub struct HashSet {
    buckets: Addr,
    bucket_count: u64,
}

impl HashSet {
    /// Creates a handle for a set whose bucket array (one word per bucket,
    /// zero-initialized) starts at `buckets`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is not a power of two.
    #[must_use]
    pub fn new(buckets: Addr, bucket_count: u64) -> Self {
        assert!(bucket_count.is_power_of_two());
        HashSet {
            buckets,
            bucket_count,
        }
    }

    fn bucket_of(&self, key: u64) -> Addr {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        self.buckets.add_words(h & (self.bucket_count - 1))
    }

    /// Transactionally tests membership.
    ///
    /// # Errors
    ///
    /// Propagates transaction aborts.
    pub fn contains(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut Ctx<StampWorld>,
        key: u64,
    ) -> Result<bool, TxAbort> {
        let bucket = self.bucket_of(key);
        let mut cur = tx.read(ctx, bucket)?;
        while cur != 0 {
            let node = Addr(cur);
            if tx.read(ctx, field(node, F_KEY))? == key {
                return Ok(true);
            }
            cur = tx.read(ctx, field(node, F_NEXT))?;
        }
        Ok(false)
    }

    /// Transactionally inserts `key`; returns `false` if already present.
    ///
    /// # Errors
    ///
    /// Propagates transaction aborts.
    pub fn insert(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut Ctx<StampWorld>,
        key: u64,
    ) -> Result<bool, TxAbort> {
        let bucket = self.bucket_of(key);
        let mut cur = tx.read(ctx, bucket)?;
        let head = cur;
        while cur != 0 {
            let node = Addr(cur);
            if tx.read(ctx, field(node, F_KEY))? == key {
                return Ok(false);
            }
            cur = tx.read(ctx, field(node, F_NEXT))?;
        }
        let node = tx.alloc(ctx, NODE_WORDS)?;
        tx.write(ctx, field(node, F_KEY), key)?;
        tx.write(ctx, field(node, F_NEXT), head)?;
        tx.write(ctx, bucket, node.0)?;
        Ok(true)
    }

    /// Host-side scan for verification: all keys, unordered.
    #[must_use]
    pub fn peek_all(&self, m: &ufotm_machine::Machine) -> Vec<u64> {
        let mut out = Vec::new();
        for b in 0..self.bucket_count {
            let mut cur = m.peek(self.buckets.add_words(b));
            while cur != 0 {
                let node = Addr(cur);
                out.push(m.peek(field(node, F_KEY)));
                cur = m.peek(field(node, F_NEXT));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::{SystemKind, TmShared, TmThread};
    use ufotm_machine::{Machine, MachineConfig};
    use ufotm_sim::{Sim, SimResult, ThreadFn};

    use crate::world::{Barrier, StampWorld};

    /// Runs a single-threaded body with a fresh world and returns it.
    fn run_one(
        kind: SystemKind,
        body: impl FnOnce(&mut TmThread, &mut ufotm_sim::Ctx<StampWorld>) + Send + 'static,
    ) -> SimResult<StampWorld> {
        let cfg = MachineConfig::table4(1);
        let tm = TmShared::standard(kind, &cfg);
        let machine = Machine::new(cfg);
        let world = StampWorld {
            tm,
            barrier: Barrier::new(Addr(64), 1),
        };
        Sim::new(machine, world).run(vec![Box::new(move |ctx: &mut ufotm_sim::Ctx<StampWorld>| {
            let mut t = TmThread::new(kind, 0);
            t.install(ctx);
            body(&mut t, ctx);
        }) as ThreadFn<StampWorld>])
    }

    #[test]
    fn bst_insert_lookup_and_order() {
        let r = run_one(SystemKind::Sequential, |t, ctx| {
            let map = BstMap::new(Addr(4096));
            for key in [50u64, 20, 80, 10, 30, 70, 90] {
                let fresh =
                    t.transaction(ctx, |tx, ctx| map.insert(tx, ctx, key, &[key * 2, 0, 0, 0]));
                assert!(fresh);
            }
            let dup = t.transaction(ctx, |tx, ctx| map.insert(tx, ctx, 30, &[1, 0, 0, 0]));
            assert!(!dup, "duplicate insert must be rejected");
            t.transaction(ctx, |tx, ctx| {
                let node = map.lookup(tx, ctx, 70)?.expect("70 present");
                assert_eq!(map.value(tx, ctx, node, 0)?, 140);
                map.set_value(tx, ctx, node, 0, 7)?;
                assert!(map.lookup(tx, ctx, 99)?.is_none());
                Ok(())
            });
        });
        let map = BstMap::new(Addr(4096));
        let mut seen = Vec::new();
        map.peek_each(&r.machine, |k, vals| seen.push((k, vals[0])));
        assert_eq!(
            seen,
            vec![
                (10, 20),
                (20, 40),
                (30, 60),
                (50, 100),
                (70, 7),
                (80, 160),
                (90, 180)
            ],
            "in-order traversal with updated value"
        );
    }

    #[test]
    fn bst_works_transactionally_on_the_hybrid() {
        let r = run_one(SystemKind::UfoHybrid, |t, ctx| {
            let map = BstMap::new(Addr(4096));
            for key in 0..20u64 {
                // Mixed order insertion via bit-reversal.
                let k = (key.reverse_bits() >> 59) ^ key;
                t.transaction(ctx, |tx, ctx| map.insert(tx, ctx, k, &[k, 0, 0, 0]));
            }
        });
        let map = BstMap::new(Addr(4096));
        let mut keys = Vec::new();
        map.peek_each(&r.machine, |k, _| keys.push(k));
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sorted_list_stays_sorted_and_unique() {
        let r = run_one(SystemKind::Sequential, |t, ctx| {
            let list = SortedList::new(Addr(4096));
            for key in [5u64, 3, 9, 1, 7, 3, 9] {
                t.transaction(ctx, |tx, ctx| list.insert(tx, ctx, key, key + 100));
            }
        });
        let list = SortedList::new(Addr(4096));
        assert_eq!(list.peek_keys(&r.machine), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn hash_set_deduplicates_across_buckets() {
        let r = run_one(SystemKind::UstmStrong, |t, ctx| {
            let set = HashSet::new(Addr(4096), 8);
            let mut fresh_count = 0;
            for key in [1u64, 2, 3, 1, 2, 3, 4, 100, 1000, 100] {
                if t.transaction(ctx, |tx, ctx| set.insert(tx, ctx, key)) {
                    fresh_count += 1;
                }
            }
            assert_eq!(fresh_count, 6);
        });
        let set = HashSet::new(Addr(4096), 8);
        let mut all = set.peek_all(&r.machine);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 100, 1000]);
    }

    #[test]
    fn structures_allocate_one_line_per_node() {
        let r = run_one(SystemKind::Sequential, |t, ctx| {
            let list = SortedList::new(Addr(4096));
            for key in 1..=4u64 {
                t.transaction(ctx, |tx, ctx| list.insert(tx, ctx, key, 0));
            }
        });
        assert_eq!(r.shared.tm.heap.live_allocations(), 4);
    }
}
