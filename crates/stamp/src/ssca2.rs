//! ssca2-style graph construction (an *extension* workload, not in the
//! paper's evaluation).
//!
//! STAMP's ssca2 kernel 1 builds a directed multigraph: every transaction
//! prepends one edge to the source node's adjacency list and bumps its
//! degree — tiny transactions over a wide address space, the
//! high-throughput/low-contention end of the spectrum. Useful as a sanity
//! extension: every TM system should scale here, with hybrids committing
//! ~everything in hardware.
//!
//! Like kmeans, the body is written once against [`TmBackend`]: [`run`]
//! executes it on the simulator, [`run_native`] on host atomics.

use ufotm_core::TmBackend;
use ufotm_machine::{Addr, Machine, LINE_WORDS};

use crate::backend::SimBackend;
use crate::harness::{
    chunk, native_heap, run_native_workload, run_workload, NativeOutcome, RunOutcome, RunSpec,
    STATIC_BASE,
};
use crate::world::StampWorld;

/// ssca2 parameters.
#[derive(Clone, Copy, Debug)]
pub struct Ssca2Params {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Total edges inserted (split across threads).
    pub edges: usize,
}

impl Ssca2Params {
    /// The standard scaled-down configuration.
    #[must_use]
    pub fn standard() -> Self {
        Ssca2Params {
            nodes: 256,
            edges: 1024,
        }
    }

    /// Node record: one line per node — [head, degree, ...].
    fn node(&self, n: usize) -> Addr {
        STATIC_BASE.add_words(n as u64 * LINE_WORDS)
    }

    /// One past the last static byte (for native heap sizing).
    fn static_end(&self) -> Addr {
        self.node(self.nodes)
    }
}

/// Deterministic edge stream.
fn edge(seed: u64, i: usize, nodes: usize) -> (u64, u64) {
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    let src = x % nodes as u64;
    let dst = (x >> 32) % nodes as u64;
    (src, dst)
}

/// One thread's whole run: insert its chunk of the edge stream.
fn insert_body<B: TmBackend>(b: &mut B, p: Ssca2Params, seed: u64) {
    let (start, end) = chunk(p.edges, b.threads(), b.tid());
    for i in start..end {
        let (src, dst) = edge(seed, i, p.nodes);
        let node = p.node(src as usize);
        b.transaction(|tx| {
            // Edge cell: [dst, next].
            let cell = tx.alloc(2)?;
            tx.write(cell, dst)?;
            let head = tx.read(node)?;
            tx.write(cell.add_words(1), head)?;
            tx.write(node, cell.0)?;
            let deg = tx.read(node.add_words(1))?;
            tx.write(node.add_words(1), deg + 1)?;
            Ok(())
        });
        b.compute(40);
    }
}

/// Walks every adjacency list in the final heap and compares it, as a
/// multiset, against the generated edge stream; degrees must sum to the
/// edge count. Works on both substrates (aborted native allocations leak
/// unreferenced cells, which a reachability walk never visits).
fn check_final(p: Ssca2Params, seed: u64, peek: &dyn Fn(Addr) -> u64) {
    // Expected multiset of targets per source.
    let mut expected: Vec<Vec<u64>> = vec![Vec::new(); p.nodes];
    for i in 0..p.edges {
        let (src, dst) = edge(seed, i, p.nodes);
        expected[src as usize].push(dst);
    }
    let mut total_degree = 0u64;
    for (n, exp) in expected.iter_mut().enumerate() {
        let node = p.node(n);
        let mut got = Vec::new();
        let mut cur = peek(node);
        while cur != 0 {
            let cell = Addr(cur);
            got.push(peek(cell));
            cur = peek(cell.add_words(1));
        }
        let deg = peek(node.add_words(1));
        assert_eq!(deg as usize, got.len(), "node {n}: degree vs list length");
        total_degree += deg;
        got.sort_unstable();
        exp.sort_unstable();
        assert_eq!(got, *exp, "node {n}: adjacency multiset");
    }
    assert_eq!(total_degree, p.edges as u64);
}

/// Runs ssca2 under `spec` on the simulated machine.
///
/// # Panics
///
/// Panics if verification fails: every node's adjacency list must contain
/// exactly the generated targets for that source (as a multiset), and the
/// degree fields must sum to the edge count.
pub fn run(spec: &RunSpec, params: &Ssca2Params) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;

    let setup = move |_m: &mut Machine, _w: &mut StampWorld| {};

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let mut b = SimBackend::new(t, ctx, tid, threads);
            insert_body(&mut b, p, seed);
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        check_final(p, seed, &|a| m.peek(a));
    };

    run_workload(spec, setup, make_body, verify)
}

/// Runs ssca2 on the native host-atomics TL2 backend.
///
/// # Panics
///
/// Panics if verification fails or `spec.backend` is not native.
pub fn run_native(spec: &RunSpec, params: &Ssca2Params) -> NativeOutcome {
    let p = *params;
    let seed = spec.seed;
    // Allocation headroom: 2 words per edge, with generous slack because
    // every aborted attempt leaks its cell (bump allocator).
    let heap = native_heap(p.static_end(), p.edges as u64 * 2 * 64);
    run_native_workload(
        spec,
        &heap,
        |_| {},
        |th| insert_body(th, p, seed),
        |h| check_final(p, seed, &|a| h.peek(a)),
        p.edges as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    fn tiny() -> Ssca2Params {
        Ssca2Params {
            nodes: 32,
            edges: 120,
        }
    }

    #[test]
    fn ssca2_verifies_on_sequential() {
        let out = run(&RunSpec::new(SystemKind::Sequential, 1), &tiny());
        assert_eq!(out.total_commits(), 120);
    }

    #[test]
    fn ssca2_verifies_on_hybrids_and_stms() {
        for kind in [
            SystemKind::UfoHybrid,
            SystemKind::PhTm,
            SystemKind::UstmStrong,
            SystemKind::Tl2,
        ] {
            let out = run(&RunSpec::new(kind, 3), &tiny());
            assert_eq!(out.total_commits(), 120, "{kind}");
        }
    }

    #[test]
    fn ssca2_hybrid_runs_mostly_in_hardware() {
        let out = run(&RunSpec::new(SystemKind::UfoHybrid, 4), &tiny());
        assert!(
            out.hw_commits > out.sw_commits * 5,
            "tiny graph txns should overwhelmingly commit in hardware \
             (hw={}, sw={})",
            out.hw_commits,
            out.sw_commits
        );
    }

    #[test]
    fn ssca2_scales_in_simulated_time() {
        let p = tiny();
        let seq = run(&RunSpec::new(SystemKind::Sequential, 1), &p);
        let par = run(&RunSpec::new(SystemKind::UfoHybrid, 4), &p);
        assert!(par.makespan < seq.makespan, "4T must beat sequential");
    }

    #[test]
    fn ssca2_verifies_on_native_threads() {
        let out = run_native(&RunSpec::native(4), &tiny());
        assert_eq!(out.ops, 120);
        assert_eq!(out.stats.commits, 120, "one commit per edge");
    }
}
