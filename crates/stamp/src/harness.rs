//! The run harness: builds a machine + world for a [`SystemKind`], runs the
//! workload threads, verifies, and collects the numbers the benchmark
//! drivers report.
//!
//! Simulated-address conventions: the first 4 KiB belong to the harness
//! (the phase barrier lives there); workload static data starts at 4 KiB;
//! the shared heap and TM metadata are placed by
//! [`TmSharedLayout::standard`](ufotm_core::TmSharedLayout).

use std::collections::BTreeMap;

use ufotm_core::{BackendKind, HybridPolicy, RunReport, SystemKind, TmShared, TmThread};
use ufotm_machine::{AbortReason, Addr, Machine, MachineConfig};
use ufotm_native::{
    run_hybrid_threads, run_threads, HybridStats, HybridThread, NativeHybrid, NativeHybridPolicy,
    NativeStats, NativeThread, NativeTl2,
};
use ufotm_sim::{Ctx, HandoffMode, Sim, ThreadFn};
use ufotm_tl2::Tl2Stats;
use ufotm_ustm::UstmStats;

use crate::world::{Barrier, StampWorld};

/// Simulated address of the harness barrier counter.
const BARRIER_ADDR: Addr = Addr(64);

/// First simulated address available to workload static data.
pub const STATIC_BASE: Addr = Addr(4096);

/// Everything needed to run one workload configuration.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// The TM system under test.
    pub kind: SystemKind,
    /// Worker thread count (= CPUs used).
    pub threads: usize,
    /// Hybrid policy knobs.
    pub policy: HybridPolicy,
    /// Machine configuration (CPU count and unbounded-BTM flag are fixed up
    /// automatically).
    pub machine: MachineConfig,
    /// Engine scheduling quantum (0 = exact lockstep).
    pub quantum: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Override the USTM otable bin count (default: the standard layout's
    /// 16384). Used by the otable-size ablation.
    pub otable_bins_override: Option<u64>,
    /// Trace-journal cap in events (0 = tracing off). Enabling tracing
    /// populates the report's latency/retry histograms and runs the trace
    /// auditor over the run; recording is host-side only and charges no
    /// simulated cycles, so results are unchanged either way.
    pub trace_cap: usize,
    /// Run the engine in [`HandoffMode::Broadcast`] (the legacy
    /// `notify_all` scheduler) instead of the default targeted handoff.
    /// Both modes must simulate bit-identically; this knob exists so the
    /// determinism regression tests can prove it.
    pub broadcast_handoff: bool,
    /// Which execution substrate runs the workload. [`run_workload`]
    /// requires [`BackendKind::Simulated`]; the `run_native` entry points
    /// require [`BackendKind::NativeTl2`] or [`BackendKind::NativeHybrid`]
    /// (where `kind`, `policy`, `machine` and the engine knobs are
    /// meaningless and ignored).
    pub backend: BackendKind,
}

impl RunSpec {
    /// A spec with the paper's Table 4 machine.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn new(kind: SystemKind, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread");
        RunSpec {
            kind,
            threads,
            policy: HybridPolicy::default(),
            machine: MachineConfig::table4(threads.max(1)),
            quantum: 0,
            seed: 0xC0FF_EE11,
            otable_bins_override: None,
            trace_cap: 0,
            broadcast_handoff: false,
            backend: BackendKind::Simulated,
        }
    }

    /// A spec for the native host-atomics TL2 backend. The simulated TL2
    /// is named as `kind` purely for labelling — no simulator runs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn native(threads: usize) -> Self {
        let mut spec = RunSpec::new(SystemKind::Tl2, threads);
        spec.backend = BackendKind::NativeTl2;
        spec
    }

    /// A spec for the native hybrid backend (TL2 fast path + USTM slow
    /// path on real threads). The simulated hybrid is named as `kind`
    /// purely for labelling — no simulator runs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn native_hybrid(threads: usize) -> Self {
        let mut spec = RunSpec::new(SystemKind::UfoHybrid, threads);
        spec.backend = BackendKind::NativeHybrid;
        spec
    }

    fn machine_config(&self) -> MachineConfig {
        let mut cfg = self.machine.clone();
        cfg.cpus = self.threads;
        if self.kind.needs_unbounded_btm() {
            cfg.btm_unbounded = true;
        }
        cfg
    }
}

/// Collected results of one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The system that ran.
    pub kind: SystemKind,
    /// Thread count.
    pub threads: usize,
    /// Simulated completion time (max CPU clock).
    pub makespan: u64,
    /// Transactions committed in hardware.
    pub hw_commits: u64,
    /// Transactions committed in software.
    pub sw_commits: u64,
    /// Transactions committed under the lock / serially.
    pub lock_commits: u64,
    /// Machine-level BTM aborts by reason (Figure 6's raw data).
    pub aborts: BTreeMap<AbortReason, u64>,
    /// Driver failovers by triggering reason.
    pub failovers: BTreeMap<AbortReason, u64>,
    /// Microbenchmark-forced failovers.
    pub forced_failovers: u64,
    /// USTM counters.
    pub ustm: UstmStats,
    /// TL2 counters.
    pub tl2: Tl2Stats,
    /// PhTM phase aborts.
    pub phase_aborts: u64,
    /// PhTM stalls waiting for an STM phase to drain.
    pub phase_stalls: u64,
    /// Total simulated memory accesses.
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Nacked transactional requests.
    pub nacks: u64,
    /// UFO faults delivered.
    pub ufo_faults: u64,
    /// Cycles spent in explicit stalls.
    pub stall_cycles: u64,
    /// The full run report (deterministic JSON via
    /// [`RunReport::to_json`]). When the spec enabled tracing, collection
    /// already audited the journal: `report.trace.audit_violations` is 0
    /// for any correct run.
    pub report: RunReport,
    /// The rendered trace journal (empty when the spec left tracing off).
    /// A pure function of the recorded events, so two runs with identical
    /// journals render identical strings — the determinism tests compare
    /// these bytes directly.
    pub journal: String,
}

impl RunOutcome {
    /// Total committed transactions.
    #[must_use]
    pub fn total_commits(&self) -> u64 {
        self.hw_commits + self.sw_commits + self.lock_commits
    }

    /// Total BTM aborts.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Aborts for one reason.
    #[must_use]
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.aborts.get(&reason).copied().unwrap_or(0)
    }
}

/// A workload thread body, given its runtime and context.
pub type WorkBody = Box<dyn FnOnce(&mut TmThread, &mut Ctx<StampWorld>) + Send>;

/// Runs one configuration: `setup` initializes simulated memory, `make_body`
/// produces each thread's work, `verify` checks invariants on the final
/// world (panicking on violation).
pub fn run_workload(
    spec: &RunSpec,
    setup: impl FnOnce(&mut Machine, &mut StampWorld),
    make_body: impl Fn(usize) -> WorkBody,
    verify: impl FnOnce(&Machine, &StampWorld),
) -> RunOutcome {
    assert_eq!(
        spec.backend,
        BackendKind::Simulated,
        "run_workload drives the simulator; use the workload's run_native \
         for BackendKind::NativeTl2"
    );
    let cfg = spec.machine_config();
    let mut layout = ufotm_core::TmSharedLayout::standard(&cfg);
    if let Some(bins) = spec.otable_bins_override {
        layout.otable_bins = bins;
    }
    let mut tm = TmShared::new(spec.kind, cfg.cpus, layout);
    if spec.trace_cap > 0 {
        tm.trace.enable(spec.trace_cap);
    }
    let mut machine = Machine::new(cfg);
    let mut world = StampWorld {
        tm,
        barrier: Barrier::new(BARRIER_ADDR, spec.threads),
    };
    setup(&mut machine, &mut world);
    let kind = spec.kind;
    let policy = spec.policy;
    let bodies: Vec<ThreadFn<StampWorld>> = (0..spec.threads)
        .map(|cpu| {
            let body = make_body(cpu);
            let f: ThreadFn<StampWorld> = Box::new(move |ctx| {
                let mut t = TmThread::with_policy(kind, cpu, policy);
                t.install(ctx);
                body(&mut t, ctx);
            });
            f
        })
        .collect();
    let mode = if spec.broadcast_handoff {
        HandoffMode::Broadcast
    } else {
        HandoffMode::Targeted
    };
    let r = Sim::new(machine, world)
        .quantum(spec.quantum)
        .handoff_mode(mode)
        .run(bodies);
    verify(&r.machine, &r.shared);

    let agg = r.machine.stats().aggregate();
    let report = RunReport::collect(spec.seed, &r.machine, &r.shared.tm);
    let journal = if spec.trace_cap > 0 {
        r.shared.tm.trace.render()
    } else {
        String::new()
    };
    RunOutcome {
        kind: spec.kind,
        threads: spec.threads,
        makespan: r.makespan,
        hw_commits: r.shared.tm.stats.hw_commits,
        sw_commits: r.shared.tm.stats.sw_commits,
        lock_commits: r.shared.tm.stats.lock_commits,
        aborts: agg.btm_aborts.clone(),
        failovers: r.shared.tm.stats.failovers.clone(),
        forced_failovers: r.shared.tm.stats.forced_failovers,
        ustm: r.shared.tm.ustm.stats,
        tl2: r.shared.tm.tl2.stats,
        phase_aborts: r.shared.tm.phtm.phase_aborts,
        phase_stalls: r.shared.tm.phtm.phase_stalls,
        accesses: agg.accesses,
        l1_misses: agg.l1_misses,
        nacks: agg.nacks,
        ufo_faults: agg.ufo_faults,
        stall_cycles: agg.stall_cycles,
        report,
        journal,
    }
}

/// Collected results of one native-backend run. Wall-clock timing is the
/// *caller's* job (`ufotm-bench` wraps `run_native` in its host-metrics
/// measurement); this crate stays free of host clocks.
#[derive(Clone, Debug)]
pub struct NativeOutcome {
    /// Real OS threads that ran.
    pub threads: usize,
    /// Workload operations completed (the ops/sec numerator).
    pub ops: u64,
    /// Merged per-thread TL2 counters (on a hybrid run, the fast path —
    /// identical to `hybrid.fast`).
    pub stats: NativeStats,
    /// Merged hybrid counters. On a TL2-only run the slow-path and
    /// failover fields are zero and `fast` mirrors `stats`, so
    /// [`NativeOutcome::total_commits`] is meaningful on both backends.
    pub hybrid: HybridStats,
}

impl NativeOutcome {
    /// Transactions committed on either path.
    #[must_use]
    pub fn total_commits(&self) -> u64 {
        self.stats.commits + self.hybrid.slow.commits
    }
}

/// Builds a native heap sized for statics ending at `static_end` (a byte
/// address, exclusive) plus `alloc_words` words of transactional
/// allocation headroom, with a 4096-stripe lock table.
#[must_use]
pub fn native_heap(static_end: Addr, alloc_words: u64) -> NativeTl2 {
    let base_word = static_end.0.next_multiple_of(64) / 8;
    NativeTl2::new(base_word + alloc_words, 1 << 12, base_word)
}

/// Runs one configuration on the native backend: `setup` populates the
/// heap, every thread runs `body` through its [`NativeThread`] handle,
/// `verify` checks invariants on the final heap (panicking on violation).
///
/// # Panics
///
/// Panics if `spec.backend` is not [`BackendKind::NativeTl2`], or if
/// `verify` (or a worker) panics.
pub fn run_native_workload(
    spec: &RunSpec,
    heap: &NativeTl2,
    setup: impl FnOnce(&NativeTl2),
    body: impl Fn(&mut NativeThread<'_>) + Sync,
    verify: impl FnOnce(&NativeTl2),
    ops: u64,
) -> NativeOutcome {
    assert_eq!(
        spec.backend,
        BackendKind::NativeTl2,
        "run_native_workload drives host atomics; use run_workload for \
         the simulated backend"
    );
    setup(heap);
    let (stats, _) = run_threads(heap, spec.threads, body);
    verify(heap);
    NativeOutcome {
        threads: spec.threads,
        ops,
        stats,
        hybrid: HybridStats {
            fast: stats,
            ..HybridStats::default()
        },
    }
}

/// Builds native hybrid shared state with a heap sized like
/// [`native_heap`] (statics ending at `static_end` plus `alloc_words` of
/// transactional headroom), a 4096-stripe lock table, and a 1024-bin USTM
/// ownership table for `threads` threads.
#[must_use]
pub fn native_hybrid_world(static_end: Addr, alloc_words: u64, threads: usize) -> NativeHybrid {
    let base_word = static_end.0.next_multiple_of(64) / 8;
    NativeHybrid::new(
        base_word + alloc_words,
        1 << 12,
        base_word,
        threads,
        1 << 10,
        NativeHybridPolicy::default(),
    )
}

/// Runs one configuration on the native hybrid backend: `setup`
/// populates the heap, every thread runs `body` through its
/// [`HybridThread`] handle, `verify` checks invariants on the final heap
/// (panicking on violation).
///
/// # Panics
///
/// Panics if `spec.backend` is not [`BackendKind::NativeHybrid`], or if
/// `verify` (or a worker) panics.
pub fn run_native_hybrid_workload(
    spec: &RunSpec,
    shared: &NativeHybrid,
    setup: impl FnOnce(&NativeTl2),
    body: impl Fn(&mut HybridThread<'_>) + Sync,
    verify: impl FnOnce(&NativeTl2),
    ops: u64,
) -> NativeOutcome {
    assert_eq!(
        spec.backend,
        BackendKind::NativeHybrid,
        "run_native_hybrid_workload drives the native hybrid; use \
         run_native_workload for BackendKind::NativeTl2"
    );
    setup(shared.tl2());
    let (stats, _) = run_hybrid_threads(shared, spec.threads, body);
    verify(shared.tl2());
    NativeOutcome {
        threads: spec.threads,
        ops,
        stats: stats.fast,
        hybrid: stats,
    }
}

/// Splits `total` items into per-thread `(start, end)` chunks.
#[must_use]
pub fn chunk(total: usize, threads: usize, tid: usize) -> (usize, usize) {
    let base = total / threads;
    let rem = total % threads;
    let start = tid * base + tid.min(rem);
    let len = base + usize::from(tid < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_exactly() {
        for total in [0, 1, 7, 100, 101] {
            for threads in [1, 2, 3, 8] {
                let mut covered = 0;
                let mut expected_start = 0;
                for tid in 0..threads {
                    let (s, e) = chunk(total, threads, tid);
                    assert_eq!(s, expected_start);
                    assert!(e >= s);
                    covered += e - s;
                    expected_start = e;
                }
                assert_eq!(covered, total, "total={total} threads={threads}");
            }
        }
    }
}
