//! vacation: a travel-reservation system (paper §5.1).
//!
//! Three relation tables (cars, flights, rooms) are binary search trees in
//! shared memory; customers are a fourth tree. A reservation task runs
//! one long transaction: several tree lookups (each reading a line per
//! level), picking the cheapest available item, decrementing its free
//! count, and crediting the customer record. Table-update tasks insert new
//! relations or reprice existing ones.
//!
//! These transactions have large, pointer-chasing footprints; with the
//! low-contention configuration (more queries over a wider id range) they
//! regularly overflow the L1 and force hybrids to fail over — the paper's
//! central stress for hybrid designs. The high-contention configuration
//! concentrates fewer queries on a hot id range.
//!
//! The workload is written once against [`TmBackend`] and runs on both
//! substrates: [`run`] on the simulated machine (cycle-charged,
//! deterministic), [`run_native`] on host atomics — TL2-only or the
//! failover hybrid, per `spec.backend`.
//!
//! Simplifications vs. STAMP: relations are repriced rather than deleted
//! (BST deletion adds no new TM behaviour), and customer records accumulate
//! reservation counts instead of linked reservation lists.

use ufotm_core::{BackendKind, TmBackend};
use ufotm_machine::{Addr, Machine, SimRng};

use crate::backend::SimBackend;
use crate::harness::{
    chunk, native_heap, native_hybrid_world, run_native_hybrid_workload, run_native_workload,
    run_workload, NativeOutcome, RunOutcome, RunSpec, STATIC_BASE,
};
use crate::structures::{BstMap, Peek};
use crate::world::StampWorld;

/// Table indices.
const TABLES: usize = 3;

/// vacation parameters.
#[derive(Clone, Copy, Debug)]
pub struct VacationParams {
    /// Relations initially populated per table.
    pub relations: usize,
    /// Id space per table (≥ `relations`).
    pub id_space: usize,
    /// Queries per reservation task.
    pub queries: usize,
    /// Fraction of the id space tasks query, in percent (smaller = hotter).
    pub query_range_pct: usize,
    /// Percentage of tasks that are reservations (the rest update tables).
    pub reserve_pct: usize,
    /// Total tasks, split across threads.
    pub total_tasks: usize,
    /// Customers.
    pub customers: usize,
}

impl VacationParams {
    /// High contention: fewer queries, hot id range (scaled-down STAMP).
    #[must_use]
    pub fn high_contention() -> Self {
        VacationParams {
            relations: 512,
            id_space: 1024,
            queries: 8,
            query_range_pct: 10,
            reserve_pct: 90,
            total_tasks: 96,
            customers: 64,
        }
    }

    /// Low contention: more queries over a wide range — bigger footprints,
    /// more cache overflows (as the paper observes).
    #[must_use]
    pub fn low_contention() -> Self {
        VacationParams {
            relations: 512,
            id_space: 1024,
            queries: 16,
            query_range_pct: 90,
            reserve_pct: 98,
            total_tasks: 96,
            customers: 64,
        }
    }

    /// Root pointer cell of table `t` (0 = cars, 1 = flights, 2 = rooms).
    fn table_root(&self, t: usize) -> Addr {
        STATIC_BASE.add_words(t as u64)
    }

    /// Root pointer cell of the customer tree.
    fn customer_root(&self) -> Addr {
        STATIC_BASE.add_words(TABLES as u64)
    }

    /// One past the last static byte (for native heap sizing). Only the
    /// four root cells are static; everything else is heap nodes.
    fn static_end(&self) -> Addr {
        STATIC_BASE.add_words(TABLES as u64 + 1)
    }

    /// Transactional-allocation headroom for native heaps: every initial
    /// relation/customer node plus every possible insert task, 8 words
    /// each, with slack.
    fn native_alloc_words(&self) -> u64 {
        ((TABLES * self.relations + self.customers + self.total_tasks) as u64 + 64) * 8
    }
}

/// Shuffled-feeling but deterministic pseudo-random stream for setup.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Populates the tables and customers through whatever peek/poke/alloc
/// the substrate provides (non-transactional; runs before the workers).
fn setup_data(
    p: VacationParams,
    seed: u64,
    peek: &Peek<'_>,
    poke: &mut dyn FnMut(Addr, u64),
    alloc: &mut dyn FnMut(u64) -> Addr,
) {
    // Relation node values: [total, free, price, 0]
    // Customer node values: [reservations, spent, 0, 0]
    for t in 0..TABLES {
        let map = BstMap::new(p.table_root(t));
        for i in 0..p.relations {
            // Insert ids in mixed order to keep the BST shallow.
            let id = mix(seed, t as u64, i as u64) % p.id_space as u64;
            let price = 50 + mix(seed, id, t as u64 + 7) % 450;
            let total = 3 + mix(seed, id, 99) % 5;
            map.host_insert(peek, poke, alloc, id, &[total, total, price, 0]);
        }
    }
    let customers = BstMap::new(p.customer_root());
    for c in 0..p.customers {
        customers.host_insert(peek, poke, alloc, c as u64, &[0, 0, 0, 0]);
    }
}

/// One thread's whole run, written once against the backend traits.
fn task_body<B: TmBackend>(b: &mut B, p: VacationParams, seed: u64) {
    let tid = b.tid();
    let mut rng = SimRng::seed_from_u64(seed ^ (tid as u64) << 32);
    let range = (p.id_space * p.query_range_pct / 100).max(1) as u64;
    let (start, end) = chunk(p.total_tasks, b.threads(), tid);
    for _ in start..end {
        let action = rng.gen_range(0..100);
        if action < p.reserve_pct as u64 {
            // Reservation task: one long transaction.
            let customer = rng.gen_range(0..p.customers as u64);
            let queries: Vec<(usize, u64)> = (0..p.queries)
                .map(|_| (rng.gen_index(0..TABLES), rng.gen_range(0..range)))
                .collect();
            b.transaction(|tx| {
                let mut best: Option<(Addr, u64)> = None;
                for &(table, id) in &queries {
                    let map = BstMap::new(p.table_root(table));
                    if let Some(node) = map.lookup(tx, id)? {
                        let free = map.value(tx, node, 1)?;
                        let price = map.value(tx, node, 2)?;
                        if free > 0 && best.is_none_or(|(_, bp)| price < bp) {
                            best = Some((node, price));
                        }
                    }
                    tx.work(20)?;
                }
                if let Some((node, price)) = best {
                    let map = BstMap::new(p.table_root(0)); // field helpers only
                    let free = map.value(tx, node, 1)?;
                    if free > 0 {
                        map.set_value(tx, node, 1, free - 1)?;
                        let cust = BstMap::new(p.customer_root());
                        let cnode = cust.lookup(tx, customer)?.expect("customer exists");
                        let n = cust.value(tx, cnode, 0)?;
                        let spent = cust.value(tx, cnode, 1)?;
                        cust.set_value(tx, cnode, 0, n + 1)?;
                        cust.set_value(tx, cnode, 1, spent + price)?;
                    }
                }
                Ok(())
            });
        } else {
            // Table update task: insert or reprice a relation.
            let table = rng.gen_index(0..TABLES);
            let id = rng.gen_range(0..p.id_space as u64);
            let price = 50 + rng.gen_range(0..450);
            b.transaction(|tx| {
                let map = BstMap::new(p.table_root(table));
                if let Some(node) = map.lookup(tx, id)? {
                    map.set_value(tx, node, 2, price)?;
                } else {
                    let total = 3 + (id % 5);
                    map.insert(tx, id, &[total, total, price, 0])?;
                }
                Ok(())
            });
        }
    }
}

/// Host-side verification, shared by both substrates: for every table,
/// `Σ (total − free) == Σ customers' reservations`, and every relation
/// keeps `0 ≤ free ≤ total`.
fn check_final(p: VacationParams, peek: &Peek<'_>) {
    let mut reserved_by_tables = 0u64;
    for t in 0..TABLES {
        let map = BstMap::new(p.table_root(t));
        map.peek_each(peek, |_key, vals| {
            let (total, free) = (vals[0], vals[1]);
            assert!(free <= total, "free {free} > total {total} in table {t}");
            reserved_by_tables += total - free;
        });
    }
    let mut reserved_by_customers = 0u64;
    let mut spent = 0u64;
    let cust = BstMap::new(p.customer_root());
    cust.peek_each(peek, |_key, vals| {
        reserved_by_customers += vals[0];
        spent += vals[1];
    });
    assert_eq!(
        reserved_by_tables, reserved_by_customers,
        "reservation conservation violated"
    );
    if reserved_by_customers > 0 {
        assert!(spent >= reserved_by_customers * 50, "prices below minimum");
    }
}

/// Runs vacation under `spec` on the simulated machine.
///
/// # Panics
///
/// Panics if verification fails (see `check_final`'s invariants).
pub fn run(spec: &RunSpec, params: &VacationParams) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;

    let setup = move |m: &mut Machine, w: &mut StampWorld| {
        // host_insert walks with immutable peeks of the machine while
        // allocating from the world's heap (disjoint borrows); each
        // insert's pokes are staged and applied after its walk, exactly
        // the peek-then-poke order of the pre-port setup code.
        let mut pending: Vec<(Addr, u64)> = Vec::new();
        let mut do_insert =
            |m: &mut Machine, w: &mut StampWorld, map: BstMap, key: u64, vals: [u64; 4]| {
                pending.clear();
                let heap = &mut w.tm.heap;
                map.host_insert(
                    &|a| m.peek(a),
                    &mut |a, v| pending.push((a, v)),
                    &mut |words| heap.alloc_line_aligned(words).expect("setup heap"),
                    key,
                    &vals,
                );
                for &(a, v) in &pending {
                    m.poke(a, v);
                }
            };
        for t in 0..TABLES {
            let map = BstMap::new(p.table_root(t));
            for i in 0..p.relations {
                let id = mix(seed, t as u64, i as u64) % p.id_space as u64;
                let price = 50 + mix(seed, id, t as u64 + 7) % 450;
                let total = 3 + mix(seed, id, 99) % 5;
                do_insert(m, w, map, id, [total, total, price, 0]);
            }
        }
        let customers = BstMap::new(p.customer_root());
        for c in 0..p.customers {
            do_insert(m, w, customers, c as u64, [0, 0, 0, 0]);
        }
    };

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let mut b = SimBackend::new(t, ctx, tid, threads);
            task_body(&mut b, p, seed);
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        check_final(p, &|a| m.peek(a));
    };

    run_workload(spec, setup, make_body, verify)
}

/// Runs vacation on a native backend — host-atomics TL2 or the failover
/// hybrid, per `spec.backend`: the *same* `task_body` on real OS
/// threads, verified by the same conservation check.
///
/// # Panics
///
/// Panics if verification fails or `spec.backend` is simulated.
pub fn run_native(spec: &RunSpec, params: &VacationParams) -> NativeOutcome {
    let p = *params;
    let seed = spec.seed;
    let ops = p.total_tasks as u64;
    if spec.backend == BackendKind::NativeHybrid {
        let h = native_hybrid_world(p.static_end(), p.native_alloc_words(), spec.threads);
        run_native_hybrid_workload(
            spec,
            &h,
            |t| {
                setup_data(
                    p,
                    seed,
                    &|a| t.peek(a),
                    &mut |a, v| t.poke(a, v),
                    &mut |w| t.host_alloc(w),
                )
            },
            |th| task_body(th, p, seed),
            |t| check_final(p, &|a| t.peek(a)),
            ops,
        )
    } else {
        let heap = native_heap(p.static_end(), p.native_alloc_words());
        run_native_workload(
            spec,
            &heap,
            |h| {
                setup_data(
                    p,
                    seed,
                    &|a| h.peek(a),
                    &mut |a, v| h.poke(a, v),
                    &mut |w| h.host_alloc(w),
                )
            },
            |th| task_body(th, p, seed),
            |h| check_final(p, &|a| h.peek(a)),
            ops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    fn tiny() -> VacationParams {
        VacationParams {
            relations: 64,
            id_space: 128,
            queries: 6,
            query_range_pct: 50,
            reserve_pct: 90,
            total_tasks: 30,
            customers: 16,
        }
    }

    #[test]
    fn vacation_verifies_on_sequential() {
        let out = run(&RunSpec::new(SystemKind::Sequential, 1), &tiny());
        assert_eq!(out.total_commits(), 30);
    }

    #[test]
    fn vacation_verifies_on_hybrids() {
        for kind in [SystemKind::UfoHybrid, SystemKind::HyTm, SystemKind::PhTm] {
            let out = run(&RunSpec::new(kind, 3), &tiny());
            assert_eq!(out.total_commits(), 30, "{kind}");
        }
    }

    #[test]
    fn vacation_verifies_on_stms_and_lock() {
        for kind in [
            SystemKind::UstmStrong,
            SystemKind::UstmWeak,
            SystemKind::Tl2,
            SystemKind::GlobalLock,
        ] {
            let out = run(&RunSpec::new(kind, 2), &tiny());
            assert_eq!(out.total_commits(), 30, "{kind}");
        }
    }

    #[test]
    fn vacation_verifies_on_native_threads() {
        let out = run_native(&RunSpec::native(4), &tiny());
        assert_eq!(out.ops, 30);
        assert_eq!(out.total_commits(), 30, "one commit per task");
    }

    #[test]
    fn vacation_verifies_on_native_hybrid() {
        let out = run_native(&RunSpec::native_hybrid(4), &tiny());
        assert_eq!(out.ops, 30);
        assert_eq!(out.total_commits(), 30, "one commit per task across paths");
    }

    #[test]
    fn low_contention_overflows_more_than_high() {
        use ufotm_machine::AbortReason;
        let hi = run(
            &RunSpec::new(SystemKind::UfoHybrid, 4),
            &VacationParams::high_contention(),
        );
        let lo = run(
            &RunSpec::new(SystemKind::UfoHybrid, 4),
            &VacationParams::low_contention(),
        );
        assert!(
            lo.aborts_for(AbortReason::Overflow) >= hi.aborts_for(AbortReason::Overflow),
            "low contention should overflow at least as much (lo={}, hi={})",
            lo.aborts_for(AbortReason::Overflow),
            hi.aborts_for(AbortReason::Overflow)
        );
    }
}
