//! vacation: a travel-reservation system (paper §5.1).
//!
//! Three relation tables (cars, flights, rooms) are binary search trees in
//! simulated memory; customers are a fourth tree. A reservation task runs
//! one long transaction: several tree lookups (each reading a line per
//! level), picking the cheapest available item, decrementing its free
//! count, and crediting the customer record. Table-update tasks insert new
//! relations or reprice existing ones.
//!
//! These transactions have large, pointer-chasing footprints; with the
//! low-contention configuration (more queries over a wider id range) they
//! regularly overflow the L1 and force hybrids to fail over — the paper's
//! central stress for hybrid designs. The high-contention configuration
//! concentrates fewer queries on a hot id range.
//!
//! Simplifications vs. STAMP: relations are repriced rather than deleted
//! (BST deletion adds no new TM behaviour), and customer records accumulate
//! reservation counts instead of linked reservation lists.

use ufotm_machine::{Addr, Machine, SimRng};

use crate::harness::{run_workload, RunOutcome, RunSpec, STATIC_BASE};
use crate::structures::BstMap;
use crate::world::StampWorld;

/// Table indices.
const TABLES: usize = 3;

/// vacation parameters.
#[derive(Clone, Copy, Debug)]
pub struct VacationParams {
    /// Relations initially populated per table.
    pub relations: usize,
    /// Id space per table (≥ `relations`).
    pub id_space: usize,
    /// Queries per reservation task.
    pub queries: usize,
    /// Fraction of the id space tasks query, in percent (smaller = hotter).
    pub query_range_pct: usize,
    /// Percentage of tasks that are reservations (the rest update tables).
    pub reserve_pct: usize,
    /// Total tasks, split across threads.
    pub total_tasks: usize,
    /// Customers.
    pub customers: usize,
}

impl VacationParams {
    /// High contention: fewer queries, hot id range (scaled-down STAMP).
    #[must_use]
    pub fn high_contention() -> Self {
        VacationParams {
            relations: 512,
            id_space: 1024,
            queries: 8,
            query_range_pct: 10,
            reserve_pct: 90,
            total_tasks: 96,
            customers: 64,
        }
    }

    /// Low contention: more queries over a wide range — bigger footprints,
    /// more cache overflows (as the paper observes).
    #[must_use]
    pub fn low_contention() -> Self {
        VacationParams {
            relations: 512,
            id_space: 1024,
            queries: 16,
            query_range_pct: 90,
            reserve_pct: 98,
            total_tasks: 96,
            customers: 64,
        }
    }

    /// Root pointer cell of table `t` (0 = cars, 1 = flights, 2 = rooms).
    fn table_root(&self, t: usize) -> Addr {
        STATIC_BASE.add_words(t as u64)
    }

    /// Root pointer cell of the customer tree.
    fn customer_root(&self) -> Addr {
        STATIC_BASE.add_words(TABLES as u64)
    }
}

/// Shuffled-feeling but deterministic pseudo-random stream for setup.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Runs vacation under `spec`.
///
/// # Panics
///
/// Panics if verification fails: for every table,
/// `Σ (total − free) == Σ customers' reservations`, and every relation
/// keeps `0 ≤ free ≤ total`.
pub fn run(spec: &RunSpec, params: &VacationParams) -> RunOutcome {
    let p = *params;
    let seed = spec.seed;
    let threads = spec.threads;

    // Relation node values: [total, free, price, 0]
    // Customer node values: [res_cars+res_flights+res_rooms (packed 3×16b), spent, 0, 0]
    // -- we keep it simpler: customers store [reservations, spent, 0, 0].
    let setup = move |m: &mut Machine, w: &mut StampWorld| {
        for t in 0..TABLES {
            let map = BstMap::new(p.table_root(t));
            for i in 0..p.relations {
                // Insert ids in mixed order to keep the BST shallow.
                let id = mix(seed, t as u64, i as u64) % p.id_space as u64;
                let price = 50 + mix(seed, id, t as u64 + 7) % 450;
                let total = 3 + mix(seed, id, 99) % 5;
                host_insert(m, w, map, id, &[total, total, price, 0]);
            }
        }
        let customers = BstMap::new(p.customer_root());
        for c in 0..p.customers {
            host_insert(m, w, customers, c as u64, &[0, 0, 0, 0]);
        }
    };

    let make_body = move |tid: usize| -> crate::harness::WorkBody {
        Box::new(move |t, ctx| {
            let mut rng = SimRng::seed_from_u64(seed ^ (tid as u64) << 32);
            let range = (p.id_space * p.query_range_pct / 100).max(1) as u64;
            let (start, end) = crate::harness::chunk(p.total_tasks, threads, tid);
            for _ in start..end {
                let action = rng.gen_range(0..100);
                if action < p.reserve_pct as u64 {
                    // Reservation task: one long transaction.
                    let customer = rng.gen_range(0..p.customers as u64);
                    let queries: Vec<(usize, u64)> = (0..p.queries)
                        .map(|_| (rng.gen_index(0..TABLES), rng.gen_range(0..range)))
                        .collect();
                    t.transaction(ctx, |tx, ctx| {
                        let mut best: Option<(Addr, u64)> = None;
                        for &(table, id) in &queries {
                            let map = BstMap::new(p.table_root(table));
                            if let Some(node) = map.lookup(tx, ctx, id)? {
                                let free = map.value(tx, ctx, node, 1)?;
                                let price = map.value(tx, ctx, node, 2)?;
                                if free > 0 && best.is_none_or(|(_, bp)| price < bp) {
                                    best = Some((node, price));
                                }
                            }
                            tx.work(ctx, 20)?;
                        }
                        if let Some((node, price)) = best {
                            let map = BstMap::new(p.table_root(0)); // field helpers only
                            let free = map.value(tx, ctx, node, 1)?;
                            if free > 0 {
                                map.set_value(tx, ctx, node, 1, free - 1)?;
                                let cust = BstMap::new(p.customer_root());
                                let cnode =
                                    cust.lookup(tx, ctx, customer)?.expect("customer exists");
                                let n = cust.value(tx, ctx, cnode, 0)?;
                                let spent = cust.value(tx, ctx, cnode, 1)?;
                                cust.set_value(tx, ctx, cnode, 0, n + 1)?;
                                cust.set_value(tx, ctx, cnode, 1, spent + price)?;
                            }
                        }
                        Ok(())
                    });
                } else {
                    // Table update task: insert or reprice a relation.
                    let table = rng.gen_index(0..TABLES);
                    let id = rng.gen_range(0..p.id_space as u64);
                    let price = 50 + rng.gen_range(0..450);
                    t.transaction(ctx, |tx, ctx| {
                        let map = BstMap::new(p.table_root(table));
                        if let Some(node) = map.lookup(tx, ctx, id)? {
                            map.set_value(tx, ctx, node, 2, price)?;
                        } else {
                            let total = 3 + (id % 5);
                            map.insert(tx, ctx, id, &[total, total, price, 0])?;
                        }
                        Ok(())
                    });
                }
            }
        })
    };

    let verify = move |m: &Machine, _w: &StampWorld| {
        let mut reserved_by_tables = 0u64;
        for t in 0..TABLES {
            let map = BstMap::new(p.table_root(t));
            map.peek_each(m, |_key, vals| {
                let (total, free) = (vals[0], vals[1]);
                assert!(free <= total, "free {free} > total {total} in table {t}");
                reserved_by_tables += total - free;
            });
        }
        let mut reserved_by_customers = 0u64;
        let mut spent = 0u64;
        let cust = BstMap::new(p.customer_root());
        cust.peek_each(m, |_key, vals| {
            reserved_by_customers += vals[0];
            spent += vals[1];
        });
        assert_eq!(
            reserved_by_tables, reserved_by_customers,
            "reservation conservation violated"
        );
        if reserved_by_customers > 0 {
            assert!(spent >= reserved_by_customers * 50, "prices below minimum");
        }
    };

    run_workload(spec, setup, make_body, verify)
}

/// Setup-time (non-simulating) tree insert: allocates from the heap and
/// pokes the node, using the same layout as the transactional code.
fn host_insert(m: &mut Machine, w: &mut StampWorld, map: BstMap, key: u64, vals: &[u64; 4]) {
    // Walk down with peeks.
    let root = map_root(map);
    let mut parent_field = root;
    let mut cur = m.peek(root);
    while cur != 0 {
        let node = Addr(cur);
        let k = m.peek(node);
        if k == key {
            return; // already present
        }
        let f = if key < k { 1 } else { 2 };
        parent_field = node.add_words(f);
        cur = m.peek(parent_field);
    }
    let node = w.tm.heap.alloc_line_aligned(8).expect("setup heap");
    m.poke(node, key);
    m.poke(node.add_words(1), 0);
    m.poke(node.add_words(2), 0);
    for (i, v) in vals.iter().enumerate() {
        m.poke(node.add_words(3 + i as u64), *v);
    }
    m.poke(parent_field, node.0);
}

fn map_root(map: BstMap) -> Addr {
    // BstMap stores only the root cell address; mirror its accessor.
    // (Kept private in `structures`; reconstructed here via Debug layout.)
    map.root_cell()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufotm_core::SystemKind;

    fn tiny() -> VacationParams {
        VacationParams {
            relations: 64,
            id_space: 128,
            queries: 6,
            query_range_pct: 50,
            reserve_pct: 90,
            total_tasks: 30,
            customers: 16,
        }
    }

    #[test]
    fn vacation_verifies_on_sequential() {
        let out = run(&RunSpec::new(SystemKind::Sequential, 1), &tiny());
        assert_eq!(out.total_commits(), 30);
    }

    #[test]
    fn vacation_verifies_on_hybrids() {
        for kind in [SystemKind::UfoHybrid, SystemKind::HyTm, SystemKind::PhTm] {
            let out = run(&RunSpec::new(kind, 3), &tiny());
            assert_eq!(out.total_commits(), 30, "{kind}");
        }
    }

    #[test]
    fn vacation_verifies_on_stms_and_lock() {
        for kind in [
            SystemKind::UstmStrong,
            SystemKind::UstmWeak,
            SystemKind::Tl2,
            SystemKind::GlobalLock,
        ] {
            let out = run(&RunSpec::new(kind, 2), &tiny());
            assert_eq!(out.total_commits(), 30, "{kind}");
        }
    }

    #[test]
    fn low_contention_overflows_more_than_high() {
        use ufotm_machine::AbortReason;
        let hi = run(
            &RunSpec::new(SystemKind::UfoHybrid, 4),
            &VacationParams::high_contention(),
        );
        let lo = run(
            &RunSpec::new(SystemKind::UfoHybrid, 4),
            &VacationParams::low_contention(),
        );
        assert!(
            lo.aborts_for(AbortReason::Overflow) >= hi.aborts_for(AbortReason::Overflow),
            "low contention should overflow at least as much (lo={}, hi={})",
            lo.aborts_for(AbortReason::Overflow),
            hi.aborts_for(AbortReason::Overflow)
        );
    }
}
