//! # `ufotm-stamp` — STAMP-style workloads over the simulated machine
//!
//! Re-implementations of the three STAMP benchmarks the paper evaluates
//! (§5.1), plus the software-failover microbenchmark of §5.3:
//!
//! * [`kmeans`] — clustering; many small transactions updating per-cluster
//!   accumulators. High contention = few clusters.
//! * [`vacation`] — a travel-reservation system over binary search trees in
//!   simulated memory; long-running, large-footprint transactions that
//!   sometimes overflow the L1 (more often in the low-contention
//!   configuration, as the paper observes).
//! * [`genome`] — segment de-duplication into a shared hash set, then
//!   assembly by sorted-linked-list insertion: the paper's high-contention
//!   CM stress test.
//! * [`micro`] — conflict-free transactions that fail over to software at a
//!   prescribed random rate (Figure 7).
//! * [`ssca2`] — an extension workload (STAMP's graph-construction kernel):
//!   tiny scalable transactions, the low-contention end of the spectrum.
//!
//! Every workload is written once against `ufotm-core`'s [`Tx`] facade and
//! runs unchanged on all nine [`SystemKind`]s; each verifies its own
//! invariants against the final memory image. The [`harness`] module wires
//! workload bodies, machine configuration, and result collection together
//! for the benchmark drivers in `ufotm-bench`.
//!
//! Two workloads (kmeans and ssca2) are additionally written against the
//! substrate-agnostic [`TmBackend`](ufotm_core::TmBackend) traits via
//! [`backend::SimBackend`], so the *same body* also runs on `ufotm-native`'s
//! host-atomics TL2 (`kmeans::run_native`, `ssca2::run_native`) for
//! wall-clock throughput and sim-vs-native cross-validation.
//!
//! [`Tx`]: ufotm_core::Tx
//! [`SystemKind`]: ufotm_core::SystemKind

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod genome;
pub mod harness;
pub mod kmeans;
pub mod micro;
pub mod ssca2;
pub mod structures;
pub mod vacation;
mod world;

pub use backend::SimBackend;
pub use harness::{NativeOutcome, RunOutcome, RunSpec};
pub use world::{Barrier, StampWorld};
