//! Sim-vs-native cross-validation: TL2, USTM, and the hybrid driver.
//!
//! Both TL2 implementations (`ufotm_tl2::Tl2Txn` on the simulated
//! machine, `ufotm_native::NativeTxn` on host atomics) expose manual
//! step-at-a-time transaction handles, so the *same* single-threaded
//! script can interleave two transactions on either substrate. Each
//! script records every operation's result (values, abort
//! classifications) plus the final heap words it touched; the sim and
//! native logs must be string-identical. Both sides use a 4096-entry
//! lock table and the same stripe hash, so even stripe collisions agree.
//!
//! The USTM scripts drive a *single* manual handle per substrate
//! (`ufotm_ustm::UstmTxn` vs `ufotm_native::NativeUstmTxn`): the
//! simulated USTM's blocking protocol stalls a conflictor until its
//! opponent retires, so a one-thread script interleaving two handles
//! would deadlock — conflict behaviour is covered end-to-end by the
//! workload runs instead. Both sides share the `UstmAbort` type, so the
//! scripts compare classification *events* (where in the script aborts
//! surface and what they roll back), not just formatting.
//!
//! The hybrid scripts run at transaction granularity through the
//! [`TmBackend`] trait — the same generic script on the simulated
//! UfoHybrid driver and the native TL2+USTM failover driver — and label
//! each transaction's commit path from `commit_counts()` deltas,
//! including a forced fast→slow failover via `force_failover_next()`.

use std::sync::{Arc, Mutex};

use ufotm_core::TmBackend;
use ufotm_machine::{Addr, Machine, MachineConfig};
use ufotm_native::{
    HybridThread, NativeHybrid, NativeHybridPolicy, NativeTl2, NativeTxn, NativeUstm, NativeUstmTxn,
};
use ufotm_sim::{Ctx, Sim, ThreadFn};
use ufotm_tl2::{Tl2Abort, Tl2Config, Tl2Shared, Tl2Txn};
use ufotm_ustm::{UstmAbort, UstmConfig, UstmShared, UstmTxn};

const X: Addr = Addr(512);
const LOCK_ENTRIES: u64 = 4096;

/// The stripe both implementations hash a line to (kept in sync with
/// `Tl2Shared::lock_index` / `NativeTl2::stripe_of` — if either drifts,
/// the classification assertions below catch it).
fn stripe(addr: Addr) -> u64 {
    ((addr.0 / 64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) & (LOCK_ENTRIES - 1)
}

/// An address past `from` on a different stripe than X.
fn distinct_stripe(from: u64) -> Addr {
    (1..64)
        .map(|i| Addr(from + i * 64))
        .find(|a| stripe(*a) != stripe(X))
        .expect("a distinct stripe within 64 lines")
}

/// Two interleaved transactions plus plain heap access — the least
/// common denominator of the two substrates' manual APIs.
trait TxnPair {
    fn begin(&mut self, who: usize);
    fn read(&mut self, who: usize, addr: Addr) -> Result<u64, Tl2Abort>;
    fn write(&mut self, who: usize, addr: Addr, value: u64) -> Result<(), Tl2Abort>;
    fn commit(&mut self, who: usize) -> Result<(), Tl2Abort>;
    fn peek(&mut self, addr: Addr) -> u64;
}

struct SimPair<'c> {
    ctx: &'c mut Ctx<Tl2Shared>,
    txns: [Tl2Txn; 2],
}

impl TxnPair for SimPair<'_> {
    fn begin(&mut self, who: usize) {
        self.txns[who].begin(self.ctx);
    }
    fn read(&mut self, who: usize, addr: Addr) -> Result<u64, Tl2Abort> {
        self.txns[who].read(self.ctx, addr)
    }
    fn write(&mut self, who: usize, addr: Addr, value: u64) -> Result<(), Tl2Abort> {
        self.txns[who].write(self.ctx, addr, value)
    }
    fn commit(&mut self, who: usize) -> Result<(), Tl2Abort> {
        self.txns[who].commit(self.ctx)
    }
    fn peek(&mut self, addr: Addr) -> u64 {
        self.ctx.with(|w| w.machine.peek(addr))
    }
}

struct NativePair<'a> {
    shared: &'a NativeTl2,
    txns: [NativeTxn<'a>; 2],
}

impl TxnPair for NativePair<'_> {
    fn begin(&mut self, who: usize) {
        self.txns[who].begin();
    }
    fn read(&mut self, who: usize, addr: Addr) -> Result<u64, Tl2Abort> {
        self.txns[who].read(addr)
    }
    fn write(&mut self, who: usize, addr: Addr, value: u64) -> Result<(), Tl2Abort> {
        self.txns[who].write(addr, value)
    }
    fn commit(&mut self, who: usize) -> Result<(), Tl2Abort> {
        self.txns[who].commit()
    }
    fn peek(&mut self, addr: Addr) -> u64 {
        self.shared.peek(addr)
    }
}

/// Runs `script` on the simulated TL2 (one logical thread driving two
/// manual handles) and returns its event log.
fn run_sim(script: fn(&mut dyn TxnPair) -> Vec<String>) -> Vec<String> {
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let machine = Machine::new(MachineConfig::table4(2));
    let shared = Tl2Shared::new(Tl2Config::default(), Addr(1 << 20), LOCK_ENTRIES);
    let body: ThreadFn<Tl2Shared> = Box::new(move |ctx: &mut Ctx<Tl2Shared>| {
        let mut pair = SimPair {
            ctx,
            txns: [Tl2Txn::new(0), Tl2Txn::new(1)],
        };
        *sink.lock().unwrap() = script(&mut pair);
    });
    Sim::new(machine, shared).run(vec![body]);
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// Runs `script` on the native TL2 and returns its event log.
fn run_native(script: fn(&mut dyn TxnPair) -> Vec<String>) -> Vec<String> {
    let shared = NativeTl2::new(1 << 15, LOCK_ENTRIES, 1 << 14);
    let mut pair = NativePair {
        txns: [NativeTxn::new(&shared, 0), NativeTxn::new(&shared, 1)],
        shared: &shared,
    };
    script(&mut pair)
}

/// Asserts both substrates produce the identical event log, and returns
/// it for script-specific spot checks.
fn cross_validate(name: &str, script: fn(&mut dyn TxnPair) -> Vec<String>) -> Vec<String> {
    let sim = run_sim(script);
    let native = run_native(script);
    assert_eq!(sim, native, "{name}: sim and native logs diverge");
    assert!(!sim.is_empty(), "{name}: vacuous script");
    sim
}

#[test]
fn isolation_and_publication_agree() {
    let log = cross_validate("isolation", |p| {
        let mut ev = Vec::new();
        p.begin(0);
        ev.push(format!("a.read X pre: {:?}", p.read(0, X)));
        ev.push(format!("a.write X=7: {:?}", p.write(0, X, 7)));
        ev.push(format!("a.read own: {:?}", p.read(0, X)));
        ev.push(format!("heap X before commit: {}", p.peek(X)));
        p.begin(1);
        ev.push(format!("b.read X (isolated): {:?}", p.read(1, X)));
        ev.push(format!("b.commit: {:?}", p.commit(1)));
        ev.push(format!("a.commit: {:?}", p.commit(0)));
        ev.push(format!("heap X after commit: {}", p.peek(X)));
        ev
    });
    assert!(log.contains(&"a.read own: Ok(7)".to_string()));
    assert!(log.contains(&"heap X after commit: 7".to_string()));
}

#[test]
fn stale_read_classification_agrees() {
    let log = cross_validate("stale-read", |p| {
        let mut ev = Vec::new();
        p.begin(0); // A's rv predates B's commit
        p.begin(1);
        ev.push(format!("b.write X=42: {:?}", p.write(1, X, 42)));
        ev.push(format!("b.commit: {:?}", p.commit(1)));
        ev.push(format!("a.read X stale: {:?}", p.read(0, X)));
        ev.push(format!("heap X: {}", p.peek(X)));
        ev
    });
    assert!(
        log.contains(&format!(
            "a.read X stale: {:?}",
            Err::<u64, _>(Tl2Abort::ReadValidation)
        )),
        "both sides must classify the stale read as ReadValidation: {log:?}"
    );
}

#[test]
fn commit_validation_classification_agrees() {
    let log = cross_validate("commit-validation", |p| {
        let y = distinct_stripe(1024);
        let mut ev = Vec::new();
        p.begin(0);
        ev.push(format!("a.read X: {:?}", p.read(0, X)));
        p.begin(1);
        ev.push(format!("b.write X=9: {:?}", p.write(1, X, 9)));
        ev.push(format!("b.commit: {:?}", p.commit(1)));
        ev.push(format!("a.write Y=1: {:?}", p.write(0, y, 1)));
        ev.push(format!("a.commit: {:?}", p.commit(0)));
        ev.push(format!("heap X: {}", p.peek(X)));
        ev.push(format!("heap Y: {}", p.peek(y)));
        ev
    });
    assert!(
        log.contains(&format!(
            "a.commit: {:?}",
            Err::<(), _>(Tl2Abort::CommitValidation)
        )),
        "both sides must classify the doomed commit as CommitValidation: {log:?}"
    );
    assert!(
        log.contains(&"heap Y: 0".to_string()),
        "aborted write leaked"
    );
}

#[test]
fn final_heaps_agree_after_a_deterministic_mix() {
    // A serial pseudo-random mix of read-modify-write transactions over a
    // small address range, alternating handles: no aborts, and the final
    // heap must be word-identical across substrates.
    cross_validate("deterministic-mix", |p| {
        let addrs: Vec<Addr> = (0..16).map(|i| Addr(512 + i * 64)).collect();
        let mut rng = 0xDEAD_BEEFu64;
        for step in 0..200 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let who = (step & 1) as usize;
            let src = addrs[(rng % 16) as usize];
            let dst = addrs[((rng >> 8) % 16) as usize];
            p.begin(who);
            let v = p.read(who, src).unwrap();
            p.write(who, dst, v + (rng % 7) + 1).unwrap();
            p.commit(who).unwrap();
        }
        let mut ev = Vec::new();
        for &a in &addrs {
            ev.push(format!("heap {}: {}", a.0, p.peek(a)));
        }
        ev
    });
}

// --- USTM: single-handle manual scripts --------------------------------

/// One manual USTM transaction handle plus plain heap access — the least
/// common denominator of `UstmTxn` (simulated) and `NativeUstmTxn`.
trait UstmHandle {
    fn begin(&mut self);
    fn read(&mut self, addr: Addr) -> Result<u64, UstmAbort>;
    fn write(&mut self, addr: Addr, value: u64) -> Result<(), UstmAbort>;
    fn commit(&mut self) -> Result<(), UstmAbort>;
    fn abort(&mut self) -> UstmAbort;
    fn peek(&mut self, addr: Addr) -> u64;
}

struct SimUstm<'c> {
    ctx: &'c mut Ctx<UstmShared>,
    txn: UstmTxn,
}

impl UstmHandle for SimUstm<'_> {
    fn begin(&mut self) {
        self.txn.begin(self.ctx);
    }
    fn read(&mut self, addr: Addr) -> Result<u64, UstmAbort> {
        self.txn.read(self.ctx, addr)
    }
    fn write(&mut self, addr: Addr, value: u64) -> Result<(), UstmAbort> {
        self.txn.write(self.ctx, addr, value)
    }
    fn commit(&mut self) -> Result<(), UstmAbort> {
        self.txn.commit(self.ctx)
    }
    fn abort(&mut self) -> UstmAbort {
        self.txn.abort_explicit(self.ctx)
    }
    fn peek(&mut self, addr: Addr) -> u64 {
        self.ctx.with(|w| w.machine.peek(addr))
    }
}

struct NativeUstmHandle<'a> {
    heap: &'a NativeTl2,
    txn: NativeUstmTxn<'a>,
}

impl UstmHandle for NativeUstmHandle<'_> {
    fn begin(&mut self) {
        self.txn.begin();
    }
    fn read(&mut self, addr: Addr) -> Result<u64, UstmAbort> {
        self.txn.read(addr)
    }
    fn write(&mut self, addr: Addr, value: u64) -> Result<(), UstmAbort> {
        self.txn.write(addr, value)
    }
    fn commit(&mut self) -> Result<(), UstmAbort> {
        self.txn.commit()
    }
    fn abort(&mut self) -> UstmAbort {
        self.txn.abort_explicit()
    }
    fn peek(&mut self, addr: Addr) -> u64 {
        self.heap.peek(addr)
    }
}

/// Runs a USTM script on the simulated machine (strong-atomicity config,
/// one CPU) and returns its event log.
fn run_sim_ustm(script: fn(&mut dyn UstmHandle) -> Vec<String>) -> Vec<String> {
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let machine = Machine::new(MachineConfig::table4(1));
    let shared = UstmShared::new(UstmConfig::default(), Addr(1 << 20), 1, 1 << 10);
    let body: ThreadFn<UstmShared> = Box::new(move |ctx: &mut Ctx<UstmShared>| {
        let mut h = SimUstm {
            ctx,
            txn: UstmTxn::new(0),
        };
        *sink.lock().unwrap() = script(&mut h);
    });
    Sim::new(machine, shared).run(vec![body]);
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// Runs a USTM script on the native slow path and returns its event log.
fn run_native_ustm(script: fn(&mut dyn UstmHandle) -> Vec<String>) -> Vec<String> {
    let heap = NativeTl2::new(1 << 15, LOCK_ENTRIES, 1 << 14);
    let ustm = NativeUstm::new(1, 1 << 10);
    let mut h = NativeUstmHandle {
        txn: NativeUstmTxn::new(&heap, &ustm, 0),
        heap: &heap,
    };
    script(&mut h)
}

/// Asserts both USTM substrates produce the identical event log.
///
/// The scripts must not peek the heap while a writer transaction is in
/// flight: the simulated USTM versions eagerly (speculative stores land
/// in place, undone on abort) while the native USTM buffers a redo log,
/// so mid-transaction heap bytes legitimately differ — only the
/// committed (or rolled-back) states are comparable.
fn cross_validate_ustm(name: &str, script: fn(&mut dyn UstmHandle) -> Vec<String>) -> Vec<String> {
    let sim = run_sim_ustm(script);
    let native = run_native_ustm(script);
    assert_eq!(sim, native, "{name}: sim and native USTM logs diverge");
    assert!(!sim.is_empty(), "{name}: vacuous script");
    sim
}

#[test]
fn ustm_publication_and_read_own_write_agree() {
    let log = cross_validate_ustm("ustm-publication", |h| {
        let y = distinct_stripe(2048);
        let mut ev = Vec::new();
        ev.push(format!("heap X pristine: {}", h.peek(X)));
        h.begin();
        ev.push(format!("read X pre: {:?}", h.read(X)));
        ev.push(format!("write X=7: {:?}", h.write(X, 7)));
        ev.push(format!("read own X: {:?}", h.read(X)));
        ev.push(format!("write Y=3: {:?}", h.write(y, 3)));
        ev.push(format!("commit: {:?}", h.commit()));
        ev.push(format!("heap X published: {}", h.peek(X)));
        ev.push(format!("heap Y published: {}", h.peek(y)));
        ev
    });
    assert!(log.contains(&"read own X: Ok(7)".to_string()));
    assert!(log.contains(&"heap X published: 7".to_string()));
}

#[test]
fn ustm_explicit_abort_classification_and_rollback_agree() {
    let log = cross_validate_ustm("ustm-explicit-abort", |h| {
        let y = distinct_stripe(4096);
        let mut ev = Vec::new();
        h.begin();
        ev.push(format!("write X=9: {:?}", h.write(X, 9)));
        ev.push(format!("write Y=5: {:?}", h.write(y, 5)));
        let abort = h.abort();
        ev.push(format!("abort debug: {abort:?}"));
        ev.push(format!("abort display: {abort}"));
        ev.push(format!("heap X rolled back: {}", h.peek(X)));
        ev.push(format!("heap Y rolled back: {}", h.peek(y)));
        // The handle is reusable after an explicit abort.
        h.begin();
        ev.push(format!("write X=5: {:?}", h.write(X, 5)));
        ev.push(format!("commit: {:?}", h.commit()));
        ev.push(format!("heap X after retry: {}", h.peek(X)));
        ev
    });
    assert!(
        log.contains(&"abort display: explicit STM abort".to_string()),
        "both sides must classify the abort identically: {log:?}"
    );
    assert!(log.contains(&"heap X rolled back: 0".to_string()));
    assert!(log.contains(&"heap X after retry: 5".to_string()));
}

#[test]
fn ustm_serial_rmw_mix_final_heaps_agree() {
    // A serial pseudo-random read-modify-write mix over a small address
    // range: no aborts, and the final heap must be word-identical.
    cross_validate_ustm("ustm-deterministic-mix", |h| {
        let addrs: Vec<Addr> = (0..12).map(|i| Addr(512 + i * 64)).collect();
        let mut rng = 0x5EED_CAFEu64;
        for _ in 0..100 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let src = addrs[(rng % 12) as usize];
            let dst = addrs[((rng >> 8) % 12) as usize];
            h.begin();
            let v = h.read(src).unwrap();
            h.write(dst, v + (rng % 5) + 1).unwrap();
            h.commit().unwrap();
        }
        let mut ev = Vec::new();
        for &a in &addrs {
            ev.push(format!("heap {}: {}", a.0, h.peek(a)));
        }
        ev
    });
}

// --- Hybrid: transaction-granularity scripts over TmBackend ------------

/// Labels one transaction's commit path from a `commit_counts()` delta.
fn path(fast: u64, slow: u64) -> &'static str {
    match (fast, slow) {
        (1, 0) => "fast",
        (0, 1) => "slow",
        _ => "mixed",
    }
}

/// The shared hybrid script: three read-modify-write transactions, the
/// middle one forced onto the slow path via the driver's failover hook.
/// Runs unchanged on the simulated UfoHybrid (BTM fast path, USTM slow
/// path) and the native hybrid (TL2 fast path, native USTM slow path);
/// values, per-transaction path labels, and failover counts must agree.
fn hybrid_script<B: TmBackend>(b: &mut B) -> Vec<String> {
    let mut ev = Vec::new();
    let (f0, s0) = b.commit_counts();
    let v = b.transaction(|tx| {
        let v = tx.read(X)?;
        tx.write(X, v + 7)?;
        tx.read(X)
    });
    let (f1, s1) = b.commit_counts();
    ev.push(format!("rmw: {v}, path {}", path(f1 - f0, s1 - s0)));

    let failovers_before = b.failovers();
    b.force_failover_next();
    let v = b.transaction(|tx| {
        let v = tx.read(X)?;
        tx.write(X, v * 3)?;
        tx.read(X)
    });
    let (f2, s2) = b.commit_counts();
    ev.push(format!("forced: {v}, path {}", path(f2 - f1, s2 - s1)));
    ev.push(format!(
        "failovers taken: {}",
        b.failovers() - failovers_before
    ));

    // The forced failover is one-shot: the next transaction goes back to
    // the fast path on both drivers.
    let v = b.transaction(|tx| {
        let v = tx.read(X)?;
        tx.write(X, v + 1)?;
        tx.read(X)
    });
    let (f3, s3) = b.commit_counts();
    ev.push(format!(
        "after forced: {v}, path {}",
        path(f3 - f2, s3 - s2)
    ));
    ev.push(format!("final X: {}", b.plain_load(X)));
    ev
}

#[test]
fn hybrid_forced_failover_script_agrees() {
    use ufotm_core::SystemKind;
    use ufotm_stamp::backend::SimBackend;
    use ufotm_stamp::harness::{run_workload, RunSpec, WorkBody};

    // Simulated UfoHybrid, one thread.
    let out = Arc::new(Mutex::new(Vec::new()));
    let spec = RunSpec::new(SystemKind::UfoHybrid, 1);
    run_workload(
        &spec,
        |_m, _w| {},
        |tid| -> WorkBody {
            let sink = Arc::clone(&out);
            Box::new(move |t, ctx| {
                let mut b = SimBackend::new(t, ctx, tid, 1);
                *sink.lock().unwrap() = hybrid_script(&mut b);
            })
        },
        |_m, _w| {},
    );
    let sim = Arc::try_unwrap(out).unwrap().into_inner().unwrap();

    // Native hybrid driver, one thread.
    let h = NativeHybrid::new(
        1 << 15,
        LOCK_ENTRIES,
        1 << 14,
        1,
        1 << 10,
        NativeHybridPolicy::default(),
    );
    let mut th = HybridThread::new(&h, None, 0, 1);
    let native = hybrid_script(&mut th);

    assert_eq!(sim, native, "hybrid script logs diverge");
    assert!(
        sim.contains(&"forced: 21, path slow".to_string()),
        "forced transaction must take the slow path on both drivers: {sim:?}"
    );
    assert!(
        sim.contains(&"after forced: 22, path fast".to_string()),
        "failover must be one-shot on both drivers: {sim:?}"
    );
    assert!(sim.contains(&"failovers taken: 1".to_string()));
}

#[test]
fn hybrid_workload_commit_counts_agree() {
    // End-to-end: the backend-generic vacation/genome bodies, run on the
    // simulated UfoHybrid and the native failover hybrid, commit exactly
    // the same number of transactions (every logical transaction commits
    // once, on whichever path the driver picked).
    use ufotm_core::SystemKind;
    use ufotm_stamp::harness::RunSpec;
    use ufotm_stamp::{genome, vacation};

    let gp = genome::GenomeParams {
        segments: 80,
        segment_space: 1 << 30,
        buckets: 32,
    };
    let sim = genome::run(&RunSpec::new(SystemKind::UfoHybrid, 3), &gp);
    let native = genome::run_native(&RunSpec::native_hybrid(3), &gp);
    assert_eq!(sim.total_commits(), native.total_commits());

    let vp = vacation::VacationParams {
        relations: 64,
        id_space: 128,
        queries: 6,
        query_range_pct: 50,
        reserve_pct: 90,
        total_tasks: 30,
        customers: 16,
    };
    let sim = vacation::run(&RunSpec::new(SystemKind::UfoHybrid, 4), &vp);
    let native = vacation::run_native(&RunSpec::native_hybrid(4), &vp);
    assert_eq!(sim.total_commits(), native.total_commits());
}

#[test]
fn workload_results_agree_between_substrates() {
    // End-to-end: the same backend-generic kmeans/ssca2 bodies verify
    // against the same host-side replay on both substrates, and commit
    // exactly the same number of transactions.
    use ufotm_core::SystemKind;
    use ufotm_stamp::harness::RunSpec;
    use ufotm_stamp::{kmeans, ssca2};

    let kp = kmeans::KmeansParams {
        points: 96,
        dims: 2,
        clusters: 4,
        iterations: 2,
    };
    let sim = kmeans::run(&RunSpec::new(SystemKind::Tl2, 4), &kp);
    let native = kmeans::run_native(&RunSpec::native(4), &kp);
    assert_eq!(sim.total_commits(), native.stats.commits);

    let sp = ssca2::Ssca2Params {
        nodes: 32,
        edges: 120,
    };
    let sim = ssca2::run(&RunSpec::new(SystemKind::Tl2, 4), &sp);
    let native = ssca2::run_native(&RunSpec::native(4), &sp);
    assert_eq!(sim.total_commits(), native.stats.commits);
}
