//! Sim-vs-native TL2 cross-validation.
//!
//! Both TL2 implementations (`ufotm_tl2::Tl2Txn` on the simulated
//! machine, `ufotm_native::NativeTxn` on host atomics) expose manual
//! step-at-a-time transaction handles, so the *same* single-threaded
//! script can interleave two transactions on either substrate. Each
//! script records every operation's result (values, abort
//! classifications) plus the final heap words it touched; the sim and
//! native logs must be string-identical. Both sides use a 4096-entry
//! lock table and the same stripe hash, so even stripe collisions agree.

use std::sync::{Arc, Mutex};

use ufotm_machine::{Addr, Machine, MachineConfig};
use ufotm_native::{NativeTl2, NativeTxn};
use ufotm_sim::{Ctx, Sim, ThreadFn};
use ufotm_tl2::{Tl2Abort, Tl2Config, Tl2Shared, Tl2Txn};

const X: Addr = Addr(512);
const LOCK_ENTRIES: u64 = 4096;

/// The stripe both implementations hash a line to (kept in sync with
/// `Tl2Shared::lock_index` / `NativeTl2::stripe_of` — if either drifts,
/// the classification assertions below catch it).
fn stripe(addr: Addr) -> u64 {
    ((addr.0 / 64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) & (LOCK_ENTRIES - 1)
}

/// An address past `from` on a different stripe than X.
fn distinct_stripe(from: u64) -> Addr {
    (1..64)
        .map(|i| Addr(from + i * 64))
        .find(|a| stripe(*a) != stripe(X))
        .expect("a distinct stripe within 64 lines")
}

/// Two interleaved transactions plus plain heap access — the least
/// common denominator of the two substrates' manual APIs.
trait TxnPair {
    fn begin(&mut self, who: usize);
    fn read(&mut self, who: usize, addr: Addr) -> Result<u64, Tl2Abort>;
    fn write(&mut self, who: usize, addr: Addr, value: u64) -> Result<(), Tl2Abort>;
    fn commit(&mut self, who: usize) -> Result<(), Tl2Abort>;
    fn peek(&mut self, addr: Addr) -> u64;
}

struct SimPair<'c> {
    ctx: &'c mut Ctx<Tl2Shared>,
    txns: [Tl2Txn; 2],
}

impl TxnPair for SimPair<'_> {
    fn begin(&mut self, who: usize) {
        self.txns[who].begin(self.ctx);
    }
    fn read(&mut self, who: usize, addr: Addr) -> Result<u64, Tl2Abort> {
        self.txns[who].read(self.ctx, addr)
    }
    fn write(&mut self, who: usize, addr: Addr, value: u64) -> Result<(), Tl2Abort> {
        self.txns[who].write(self.ctx, addr, value)
    }
    fn commit(&mut self, who: usize) -> Result<(), Tl2Abort> {
        self.txns[who].commit(self.ctx)
    }
    fn peek(&mut self, addr: Addr) -> u64 {
        self.ctx.with(|w| w.machine.peek(addr))
    }
}

struct NativePair<'a> {
    shared: &'a NativeTl2,
    txns: [NativeTxn<'a>; 2],
}

impl TxnPair for NativePair<'_> {
    fn begin(&mut self, who: usize) {
        self.txns[who].begin();
    }
    fn read(&mut self, who: usize, addr: Addr) -> Result<u64, Tl2Abort> {
        self.txns[who].read(addr)
    }
    fn write(&mut self, who: usize, addr: Addr, value: u64) -> Result<(), Tl2Abort> {
        self.txns[who].write(addr, value)
    }
    fn commit(&mut self, who: usize) -> Result<(), Tl2Abort> {
        self.txns[who].commit()
    }
    fn peek(&mut self, addr: Addr) -> u64 {
        self.shared.peek(addr)
    }
}

/// Runs `script` on the simulated TL2 (one logical thread driving two
/// manual handles) and returns its event log.
fn run_sim(script: fn(&mut dyn TxnPair) -> Vec<String>) -> Vec<String> {
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let machine = Machine::new(MachineConfig::table4(2));
    let shared = Tl2Shared::new(Tl2Config::default(), Addr(1 << 20), LOCK_ENTRIES);
    let body: ThreadFn<Tl2Shared> = Box::new(move |ctx: &mut Ctx<Tl2Shared>| {
        let mut pair = SimPair {
            ctx,
            txns: [Tl2Txn::new(0), Tl2Txn::new(1)],
        };
        *sink.lock().unwrap() = script(&mut pair);
    });
    Sim::new(machine, shared).run(vec![body]);
    Arc::try_unwrap(out).unwrap().into_inner().unwrap()
}

/// Runs `script` on the native TL2 and returns its event log.
fn run_native(script: fn(&mut dyn TxnPair) -> Vec<String>) -> Vec<String> {
    let shared = NativeTl2::new(1 << 15, LOCK_ENTRIES, 1 << 14);
    let mut pair = NativePair {
        txns: [NativeTxn::new(&shared, 0), NativeTxn::new(&shared, 1)],
        shared: &shared,
    };
    script(&mut pair)
}

/// Asserts both substrates produce the identical event log, and returns
/// it for script-specific spot checks.
fn cross_validate(name: &str, script: fn(&mut dyn TxnPair) -> Vec<String>) -> Vec<String> {
    let sim = run_sim(script);
    let native = run_native(script);
    assert_eq!(sim, native, "{name}: sim and native logs diverge");
    assert!(!sim.is_empty(), "{name}: vacuous script");
    sim
}

#[test]
fn isolation_and_publication_agree() {
    let log = cross_validate("isolation", |p| {
        let mut ev = Vec::new();
        p.begin(0);
        ev.push(format!("a.read X pre: {:?}", p.read(0, X)));
        ev.push(format!("a.write X=7: {:?}", p.write(0, X, 7)));
        ev.push(format!("a.read own: {:?}", p.read(0, X)));
        ev.push(format!("heap X before commit: {}", p.peek(X)));
        p.begin(1);
        ev.push(format!("b.read X (isolated): {:?}", p.read(1, X)));
        ev.push(format!("b.commit: {:?}", p.commit(1)));
        ev.push(format!("a.commit: {:?}", p.commit(0)));
        ev.push(format!("heap X after commit: {}", p.peek(X)));
        ev
    });
    assert!(log.contains(&"a.read own: Ok(7)".to_string()));
    assert!(log.contains(&"heap X after commit: 7".to_string()));
}

#[test]
fn stale_read_classification_agrees() {
    let log = cross_validate("stale-read", |p| {
        let mut ev = Vec::new();
        p.begin(0); // A's rv predates B's commit
        p.begin(1);
        ev.push(format!("b.write X=42: {:?}", p.write(1, X, 42)));
        ev.push(format!("b.commit: {:?}", p.commit(1)));
        ev.push(format!("a.read X stale: {:?}", p.read(0, X)));
        ev.push(format!("heap X: {}", p.peek(X)));
        ev
    });
    assert!(
        log.contains(&format!(
            "a.read X stale: {:?}",
            Err::<u64, _>(Tl2Abort::ReadValidation)
        )),
        "both sides must classify the stale read as ReadValidation: {log:?}"
    );
}

#[test]
fn commit_validation_classification_agrees() {
    let log = cross_validate("commit-validation", |p| {
        let y = distinct_stripe(1024);
        let mut ev = Vec::new();
        p.begin(0);
        ev.push(format!("a.read X: {:?}", p.read(0, X)));
        p.begin(1);
        ev.push(format!("b.write X=9: {:?}", p.write(1, X, 9)));
        ev.push(format!("b.commit: {:?}", p.commit(1)));
        ev.push(format!("a.write Y=1: {:?}", p.write(0, y, 1)));
        ev.push(format!("a.commit: {:?}", p.commit(0)));
        ev.push(format!("heap X: {}", p.peek(X)));
        ev.push(format!("heap Y: {}", p.peek(y)));
        ev
    });
    assert!(
        log.contains(&format!(
            "a.commit: {:?}",
            Err::<(), _>(Tl2Abort::CommitValidation)
        )),
        "both sides must classify the doomed commit as CommitValidation: {log:?}"
    );
    assert!(
        log.contains(&"heap Y: 0".to_string()),
        "aborted write leaked"
    );
}

#[test]
fn final_heaps_agree_after_a_deterministic_mix() {
    // A serial pseudo-random mix of read-modify-write transactions over a
    // small address range, alternating handles: no aborts, and the final
    // heap must be word-identical across substrates.
    cross_validate("deterministic-mix", |p| {
        let addrs: Vec<Addr> = (0..16).map(|i| Addr(512 + i * 64)).collect();
        let mut rng = 0xDEAD_BEEFu64;
        for step in 0..200 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let who = (step & 1) as usize;
            let src = addrs[(rng % 16) as usize];
            let dst = addrs[((rng >> 8) % 16) as usize];
            p.begin(who);
            let v = p.read(who, src).unwrap();
            p.write(who, dst, v + (rng % 7) + 1).unwrap();
            p.commit(who).unwrap();
        }
        let mut ev = Vec::new();
        for &a in &addrs {
            ev.push(format!("heap {}: {}", a.0, p.peek(a)));
        }
        ev
    });
}

#[test]
fn workload_results_agree_between_substrates() {
    // End-to-end: the same backend-generic kmeans/ssca2 bodies verify
    // against the same host-side replay on both substrates, and commit
    // exactly the same number of transactions.
    use ufotm_core::SystemKind;
    use ufotm_stamp::harness::RunSpec;
    use ufotm_stamp::{kmeans, ssca2};

    let kp = kmeans::KmeansParams {
        points: 96,
        dims: 2,
        clusters: 4,
        iterations: 2,
    };
    let sim = kmeans::run(&RunSpec::new(SystemKind::Tl2, 4), &kp);
    let native = kmeans::run_native(&RunSpec::native(4), &kp);
    assert_eq!(sim.total_commits(), native.stats.commits);

    let sp = ssca2::Ssca2Params {
        nodes: 32,
        edges: 120,
    };
    let sim = ssca2::run(&RunSpec::new(SystemKind::Tl2, 4), &sp);
    let native = ssca2::run_native(&RunSpec::native(4), &sp);
    assert_eq!(sim.total_commits(), native.stats.commits);
}
