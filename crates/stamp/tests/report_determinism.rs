//! The run report must serialize byte-identically across same-seed runs —
//! the property the `BENCH_*.json` artifacts rely on for diffable CI
//! uploads. Also checks the report is actually populated (a vacuously
//! empty report would be trivially deterministic).

use ufotm_core::SystemKind;
use ufotm_stamp::harness::RunSpec;
use ufotm_stamp::micro::{self, MicroParams};

fn traced_spec(kind: SystemKind) -> RunSpec {
    let mut s = RunSpec::new(kind, 4);
    s.trace_cap = 1 << 16;
    s
}

#[test]
fn same_seed_reports_are_byte_identical() {
    // A failover rate in the middle gives the report both hardware and
    // software commits to serialize.
    let params = MicroParams::with_rate(0.2);
    let a = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let b = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let ja = a.report.to_json();
    let jb = b.report.to_json();
    assert_eq!(ja, jb, "same seed must serialize byte-identically");

    // Populated, not vacuous.
    a.report.assert_audit_clean();
    assert!(a.report.trace.txns > 0, "txns reconstructed from journal");
    assert!(
        !a.report.trace.latency_log2.is_empty(),
        "latency histogram populated"
    );
    assert_eq!(
        a.report.trace.latency_log2.total(),
        a.report.trace.txns,
        "every txn contributes one latency sample"
    );
    assert!(a.report.hybrid.hw_commits > 0, "hardware commits happened");
    assert!(a.report.hybrid.sw_commits > 0, "failovers reached software");
    assert!(ja.starts_with("{\"schema\":3,"), "schema field leads");
    // Commit-path breakdown from the journal agrees with driver counters.
    let paths = &a.report.trace.commit_paths;
    assert_eq!(paths["hw"], a.report.hybrid.hw_commits);
    assert_eq!(paths["sw"], a.report.hybrid.sw_commits);
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against the degenerate explanation for byte-identity: the
    // trace/report machinery ignoring the run entirely.
    let params = MicroParams::with_rate(0.2);
    let a = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let mut spec = traced_spec(SystemKind::UfoHybrid);
    spec.seed ^= 0x5EED;
    let c = micro::run(&spec, &params);
    assert_ne!(
        a.report.to_json(),
        c.report.to_json(),
        "different seeds must produce different reports"
    );
}

#[test]
fn broadcast_engine_matches_targeted_engine_byte_for_byte() {
    // The engine-rewrite regression oracle: the legacy broadcast scheduler
    // (sched lock every op, notify_all at handoff) and the targeted fast
    // path must produce the same simulation. At quantum 0 every operation
    // is a handoff, so this exercises the scheduler maximally. Identical
    // trace journals prove per-event equality, identical report JSON
    // proves every derived counter and histogram agrees.
    let params = MicroParams::with_rate(0.2);
    let targeted = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let mut spec = traced_spec(SystemKind::UfoHybrid);
    spec.broadcast_handoff = true;
    let broadcast = micro::run(&spec, &params);
    assert_eq!(
        targeted.journal, broadcast.journal,
        "trace journals must be identical across handoff modes"
    );
    assert_eq!(
        targeted.report.to_json(),
        broadcast.report.to_json(),
        "RunReport JSON must be byte-identical across handoff modes"
    );
    assert!(
        !targeted.journal.is_empty(),
        "journal comparison must not be vacuous"
    );
}

#[test]
fn quantum_50_traced_run_satisfies_the_auditor() {
    // Batched scheduling (quantum > 0) changes interleavings but not
    // correctness: the trace auditor must still find a well-formed,
    // strongly-atomic history, and the batched run must itself be
    // deterministic in both handoff modes.
    let params = MicroParams::with_rate(0.2);
    let mut spec = traced_spec(SystemKind::UfoHybrid);
    spec.quantum = 50;
    let a = micro::run(&spec, &params);
    a.report.assert_audit_clean();
    assert!(a.report.trace.txns > 0, "txns reconstructed from journal");
    let mut bspec = spec.clone();
    bspec.broadcast_handoff = true;
    let b = micro::run(&bspec, &params);
    assert_eq!(a.journal, b.journal, "quantum 50: journals identical");
    assert_eq!(
        a.report.to_json(),
        b.report.to_json(),
        "quantum 50: reports byte-identical across handoff modes"
    );
}

#[test]
fn same_seed_crash_and_recovery_reports_are_byte_identical() {
    // The crash-recovery pipeline end to end, twice from one seed: the
    // crashed run's report, the latched durable image, the pre-crash
    // journal, and the recovered world's report must all replay exactly.
    use ufotm_core::{crashed_journal, recover_world, HybridPolicy, RunReport, TmShared, TmThread};
    use ufotm_machine::{Addr, FaultPlan, Machine, MachineConfig, PersistConfig};
    use ufotm_sim::{Ctx, Sim, ThreadFn};

    let run_once = || {
        let mut cfg = MachineConfig::table4(2);
        cfg.memory_words = 1 << 19;
        cfg.persist = Some(PersistConfig::default());
        let mut plan = FaultPlan::mixed(0x5EED);
        plan.power_fail_at = Some(6_000);
        cfg.fault_plan = Some(plan);
        let machine = Machine::new(cfg.clone());
        let mut shared = TmShared::standard(SystemKind::UstmStrong, &cfg);
        shared.trace.enable(1 << 14);
        let r = Sim::new(machine, shared).run(
            (0..2)
                .map(|cpu| -> ThreadFn<TmShared> {
                    Box::new(move |ctx: &mut Ctx<TmShared>| {
                        let mut t = TmThread::with_policy(
                            SystemKind::UstmStrong,
                            cpu,
                            HybridPolicy::default(),
                        );
                        t.install(ctx);
                        let a = Addr(4096 + cpu as u64 * 256);
                        for _ in 0..6 {
                            t.transaction(ctx, |tx, ctx| {
                                let v = tx.read(ctx, a)?;
                                tx.work(ctx, 50)?;
                                tx.write(ctx, a, v + 1)
                            });
                        }
                    })
                })
                .collect(),
        );
        let crash = r.machine.crash_image().expect("fail-point landed").clone();
        let journal = crashed_journal(&r.shared.trace, &crash);
        let mut cfg2 = cfg.clone();
        cfg2.fault_plan = None;
        let mut m2 = Machine::new(cfg2.clone());
        m2.install_image(crash.words());
        let mut shared2 = TmShared::standard(SystemKind::UstmStrong, &cfg2);
        let mut recovered_journal = journal.clone();
        recover_world(&mut m2, &mut shared2, &mut recovered_journal);
        (
            RunReport::collect(0x5EED, &r.machine, &r.shared).to_json(),
            crash.words().to_vec(),
            journal,
            RunReport::collect(0x5EED, &m2, &shared2).to_json(),
        )
    };
    let (crashed_a, image_a, journal_a, recovered_a) = run_once();
    let (crashed_b, image_b, journal_b, recovered_b) = run_once();
    assert_eq!(crashed_a, crashed_b, "crashed-run report");
    assert!(image_a == image_b, "durable image");
    assert_eq!(journal_a, journal_b, "pre-crash journal");
    assert_eq!(recovered_a, recovered_b, "recovered-world report");
    assert!(
        crashed_a.contains("\"power_fails\":1"),
        "the crash must show up in the chaos counters"
    );
}

#[test]
fn untraced_report_is_still_deterministic_and_audit_clean() {
    // trace_cap = 0: no journal, histograms empty, audit vacuously clean.
    let params = MicroParams::with_rate(0.0);
    let spec = RunSpec::new(SystemKind::UfoHybrid, 2);
    let a = micro::run(&spec, &params);
    let b = micro::run(&spec, &params);
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.report.trace.events, 0);
    a.report.assert_audit_clean();
}
