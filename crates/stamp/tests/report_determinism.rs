//! The run report must serialize byte-identically across same-seed runs —
//! the property the `BENCH_*.json` artifacts rely on for diffable CI
//! uploads. Also checks the report is actually populated (a vacuously
//! empty report would be trivially deterministic).

use ufotm_core::SystemKind;
use ufotm_stamp::harness::RunSpec;
use ufotm_stamp::micro::{self, MicroParams};

fn traced_spec(kind: SystemKind) -> RunSpec {
    let mut s = RunSpec::new(kind, 4);
    s.trace_cap = 1 << 16;
    s
}

#[test]
fn same_seed_reports_are_byte_identical() {
    // A failover rate in the middle gives the report both hardware and
    // software commits to serialize.
    let params = MicroParams::with_rate(0.2);
    let a = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let b = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let ja = a.report.to_json();
    let jb = b.report.to_json();
    assert_eq!(ja, jb, "same seed must serialize byte-identically");

    // Populated, not vacuous.
    a.report.assert_audit_clean();
    assert!(a.report.trace.txns > 0, "txns reconstructed from journal");
    assert!(
        !a.report.trace.latency_log2.is_empty(),
        "latency histogram populated"
    );
    assert_eq!(
        a.report.trace.latency_log2.total(),
        a.report.trace.txns,
        "every txn contributes one latency sample"
    );
    assert!(a.report.hybrid.hw_commits > 0, "hardware commits happened");
    assert!(a.report.hybrid.sw_commits > 0, "failovers reached software");
    assert!(ja.starts_with("{\"schema\":1,"), "schema field leads");
    // Commit-path breakdown from the journal agrees with driver counters.
    let paths = &a.report.trace.commit_paths;
    assert_eq!(paths["hw"], a.report.hybrid.hw_commits);
    assert_eq!(paths["sw"], a.report.hybrid.sw_commits);
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against the degenerate explanation for byte-identity: the
    // trace/report machinery ignoring the run entirely.
    let params = MicroParams::with_rate(0.2);
    let a = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let mut spec = traced_spec(SystemKind::UfoHybrid);
    spec.seed ^= 0x5EED;
    let c = micro::run(&spec, &params);
    assert_ne!(
        a.report.to_json(),
        c.report.to_json(),
        "different seeds must produce different reports"
    );
}

#[test]
fn broadcast_engine_matches_targeted_engine_byte_for_byte() {
    // The engine-rewrite regression oracle: the legacy broadcast scheduler
    // (sched lock every op, notify_all at handoff) and the targeted fast
    // path must produce the same simulation. At quantum 0 every operation
    // is a handoff, so this exercises the scheduler maximally. Identical
    // trace journals prove per-event equality, identical report JSON
    // proves every derived counter and histogram agrees.
    let params = MicroParams::with_rate(0.2);
    let targeted = micro::run(&traced_spec(SystemKind::UfoHybrid), &params);
    let mut spec = traced_spec(SystemKind::UfoHybrid);
    spec.broadcast_handoff = true;
    let broadcast = micro::run(&spec, &params);
    assert_eq!(
        targeted.journal, broadcast.journal,
        "trace journals must be identical across handoff modes"
    );
    assert_eq!(
        targeted.report.to_json(),
        broadcast.report.to_json(),
        "RunReport JSON must be byte-identical across handoff modes"
    );
    assert!(
        !targeted.journal.is_empty(),
        "journal comparison must not be vacuous"
    );
}

#[test]
fn quantum_50_traced_run_satisfies_the_auditor() {
    // Batched scheduling (quantum > 0) changes interleavings but not
    // correctness: the trace auditor must still find a well-formed,
    // strongly-atomic history, and the batched run must itself be
    // deterministic in both handoff modes.
    let params = MicroParams::with_rate(0.2);
    let mut spec = traced_spec(SystemKind::UfoHybrid);
    spec.quantum = 50;
    let a = micro::run(&spec, &params);
    a.report.assert_audit_clean();
    assert!(a.report.trace.txns > 0, "txns reconstructed from journal");
    let mut bspec = spec.clone();
    bspec.broadcast_handoff = true;
    let b = micro::run(&bspec, &params);
    assert_eq!(a.journal, b.journal, "quantum 50: journals identical");
    assert_eq!(
        a.report.to_json(),
        b.report.to_json(),
        "quantum 50: reports byte-identical across handoff modes"
    );
}

#[test]
fn untraced_report_is_still_deterministic_and_audit_clean() {
    // trace_cap = 0: no journal, histograms empty, audit vacuously clean.
    let params = MicroParams::with_rate(0.0);
    let spec = RunSpec::new(SystemKind::UfoHybrid, 2);
    let a = micro::run(&spec, &params);
    let b = micro::run(&spec, &params);
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.report.trace.events, 0);
    a.report.assert_audit_clean();
}
